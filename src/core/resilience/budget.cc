#include "core/resilience/budget.h"

#include "core/resilience/fault_injector.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace cfgtag::core::resilience {

namespace {

struct BudgetMetrics {
  obs::Gauge* limit_bytes;
  obs::Gauge* used_bytes;
  obs::Counter* pressure_events;
  obs::Counter* denied;
  // One degraded-mode gauge per ladder component, 1 while its rung (or a
  // higher one) is active.
  obs::Gauge* degraded_dfa;
  obs::Gauge* degraded_pool;
  obs::Gauge* degraded_artifact;

  BudgetMetrics() {
    auto& reg = obs::MetricsRegistry::Default();
    limit_bytes = reg.GetGauge("cfgtag_budget_limit_bytes",
                               "Process resource budget ceiling (0 = off)");
    used_bytes = reg.GetGauge("cfgtag_budget_used_bytes",
                              "Bytes currently charged against the budget");
    pressure_events = reg.GetCounter(
        "cfgtag_budget_pressure_events_total",
        "Times the budget escalated to a higher degradation rung");
    denied = reg.GetCounter("cfgtag_budget_denied_total",
                            "TryCharge admissions denied at the ceiling");
    degraded_dfa =
        reg.GetGauge("cfgtag_degraded_mode{component=\"dfa_cache\"}",
                     "1 while lazy-DFA cache growth is shed");
    degraded_pool =
        reg.GetGauge("cfgtag_degraded_mode{component=\"session_pool\"}",
                     "1 while session pools trim idle scratch");
    degraded_artifact =
        reg.GetGauge("cfgtag_degraded_mode{component=\"artifact_cache\"}",
                     "1 while the artifact compile cache is read-only");
  }
};

BudgetMetrics& Metrics() {
  static BudgetMetrics* const kMetrics = new BudgetMetrics;
  return *kMetrics;
}

// Escalation thresholds as a fraction of the limit, indexed by rung.
double Threshold(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kShedDfa:
      return 0.85;
    case DegradationRung::kTrimPools:
      return 0.95;
    case DegradationRung::kArtifactReadOnly:
      return 1.0;
    case DegradationRung::kNone:
      break;
  }
  return 0.0;
}

constexpr double kHysteresis = 0.05;

}  // namespace

const char* DegradationRungName(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kNone:
      return "none";
    case DegradationRung::kShedDfa:
      return "shed_dfa";
    case DegradationRung::kTrimPools:
      return "trim_pools";
    case DegradationRung::kArtifactReadOnly:
      return "artifact_read_only";
  }
  return "unknown";
}

ResourceBudget& ResourceBudget::Process() {
  static ResourceBudget* const kBudget = new ResourceBudget;
  return *kBudget;
}

void ResourceBudget::SetLimit(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
  Metrics().limit_bytes->Set(static_cast<double>(bytes));
  Reevaluate();
}

void ResourceBudget::Charge(uint64_t bytes, const char* component) {
  (void)component;
  const uint64_t used =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  Metrics().used_bytes->Set(static_cast<double>(used));
  if (limit_.load(std::memory_order_relaxed) != 0) Reevaluate();
}

Status ResourceBudget::TryCharge(uint64_t bytes, const char* component) {
  if (FaultInjector::ShouldFail("budget.charge")) {
    Metrics().denied->Increment();
    return ResourceExhaustedError(
        std::string("budget admission denied (fault injected) for ") +
        component);
  }
  const uint64_t limit = limit_.load(std::memory_order_relaxed);
  if (limit != 0 &&
      used_.load(std::memory_order_relaxed) + bytes > limit) {
    Metrics().denied->Increment();
    {
      // An admission denial is definitionally the top of the ladder: the
      // process refused to grow. Pin the rung there; Release() descends
      // through Reevaluate() once usage drops.
      std::lock_guard<std::mutex> lock(mu_);
      PublishRung(DegradationRung::kArtifactReadOnly);
    }
    return ResourceExhaustedError(
        std::string("resource budget exhausted: ") + component +
        " needs " + std::to_string(bytes) + " bytes, " +
        std::to_string(used_.load(std::memory_order_relaxed)) + "/" +
        std::to_string(limit) + " in use");
  }
  Charge(bytes, component);
  return Status::Ok();
}

void ResourceBudget::Release(uint64_t bytes) {
  uint64_t cur = used_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = cur >= bytes ? cur - bytes : 0;
  } while (!used_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed));
  Metrics().used_bytes->Set(static_cast<double>(next));
  if (limit_.load(std::memory_order_relaxed) != 0) Reevaluate();
}

void ResourceBudget::PublishRung(DegradationRung next) {
  // Caller holds mu_.
  const auto cur = static_cast<DegradationRung>(
      rung_.load(std::memory_order_relaxed));
  if (next == cur) return;
  rung_.store(static_cast<int>(next), std::memory_order_relaxed);
  if (next > cur) {
    Metrics().pressure_events->Increment();
    obs::RecordEvent(obs::EventKind::kBudgetPressure,
                     static_cast<int64_t>(used()),
                     static_cast<int64_t>(limit()),
                     DegradationRungName(next));
  }
  // Flip the per-component gauges that changed, recording one
  // degraded-mode event per transition edge.
  struct Edge {
    DegradationRung rung;
    obs::Gauge* gauge;
    const char* component;
  };
  const Edge edges[] = {
      {DegradationRung::kShedDfa, Metrics().degraded_dfa, "dfa_cache"},
      {DegradationRung::kTrimPools, Metrics().degraded_pool, "session_pool"},
      {DegradationRung::kArtifactReadOnly, Metrics().degraded_artifact,
       "artifact_cache"},
  };
  for (const Edge& e : edges) {
    const bool was = cur >= e.rung;
    const bool is = next >= e.rung;
    if (was == is) continue;
    e.gauge->Set(is ? 1.0 : 0.0);
    obs::RecordEvent(obs::EventKind::kDegradedMode, is ? 1 : 0,
                     static_cast<int64_t>(next), e.component);
  }
}

void ResourceBudget::Reevaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t limit = limit_.load(std::memory_order_relaxed);
  const auto cur = static_cast<DegradationRung>(
      rung_.load(std::memory_order_relaxed));
  if (limit == 0) {
    PublishRung(DegradationRung::kNone);
    return;
  }
  const double frac = static_cast<double>(used_.load(
                          std::memory_order_relaxed)) /
                      static_cast<double>(limit);
  DegradationRung next = DegradationRung::kNone;
  if (frac >= Threshold(DegradationRung::kArtifactReadOnly)) {
    next = DegradationRung::kArtifactReadOnly;
  } else if (frac >= Threshold(DegradationRung::kTrimPools)) {
    next = DegradationRung::kTrimPools;
  } else if (frac >= Threshold(DegradationRung::kShedDfa)) {
    next = DegradationRung::kShedDfa;
  }
  if (next < cur) {
    // Descend only once usage clears the current rung's threshold by the
    // hysteresis margin; otherwise hold. A component oscillating right at
    // a threshold must not flap the ladder.
    if (frac >= Threshold(cur) - kHysteresis) return;
  }
  PublishRung(next);
}

void ResourceBudget::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  limit_.store(0, std::memory_order_relaxed);
  used_.store(0, std::memory_order_relaxed);
  Metrics().limit_bytes->Set(0.0);
  Metrics().used_bytes->Set(0.0);
  PublishRung(DegradationRung::kNone);
}

}  // namespace cfgtag::core::resilience
