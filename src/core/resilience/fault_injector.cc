#include "core/resilience/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/events.h"

namespace cfgtag::core::resilience {

std::atomic<int> FaultInjector::armed_state_{-1};

namespace {

// Defaults when a spec entry omits arg_ms.
constexpr uint32_t kDefaultStallMs = 5;
constexpr uint32_t kDefaultSkewMs = 1000;

obs::Counter* TotalCounter() {
  static obs::Counter* const kCounter =
      obs::MetricsRegistry::Default().GetCounter(
          "cfgtag_faults_injected_total",
          "Faults fired by the FaultInjector across all sites");
  return kCounter;
}

}  // namespace

const std::vector<FaultInjector::SiteInfo>& FaultInjector::SiteCatalog() {
  static const std::vector<SiteInfo>* const kCatalog =
      new std::vector<SiteInfo>{
          {"artifact.open", FaultKind::kError,
           "artifact::LoadFromFile open(2)"},
          {"artifact.fstat", FaultKind::kError,
           "artifact::LoadFromFile fstat(2) / size re-verify"},
          {"artifact.mmap", FaultKind::kError,
           "artifact::LoadFromFile mmap(2) (falls back to copied load)"},
          {"artifact.read", FaultKind::kError,
           "artifact::LoadFromFileCopied read(2) loop"},
          {"artifact.store", FaultKind::kError,
           "artifact::AtomicWriteFile (compile-cache store)"},
          {"budget.charge", FaultKind::kError,
           "ResourceBudget::TryCharge admission"},
          {"dfa.intern", FaultKind::kError,
           "LazyDfaSession transition-cache growth (sheds to fused)"},
          {"scan.chunk", FaultKind::kStall,
           "CompiledTagger::TagWithControl chunk boundary"},
          {"engine.shard", FaultKind::kStall,
           "ScanEngine worker before a shard scan"},
          {"deadline.clock", FaultKind::kClockSkew,
           "Deadline::expired clock read"},
      };
  return *kCatalog;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* const kInstance = [] {
    auto* fi = new FaultInjector;
    if (const char* env = std::getenv("CFGTAG_FAULTS")) {
      const Status armed = fi->ArmFromSpec(env);
      if (!armed.ok()) {
        std::fprintf(stderr, "CFGTAG_FAULTS ignored: %s\n",
                     armed.ToString().c_str());
      }
    }
    return fi;
  }();
  return *kInstance;
}

bool FaultInjector::InitArmed() {
  Instance();  // parses CFGTAG_FAULTS; Arm() flips the state to 1
  int expected = -1;
  armed_state_.compare_exchange_strong(expected, 0,
                                       std::memory_order_relaxed);
  return armed_state_.load(std::memory_order_relaxed) > 0;
}

Status FaultInjector::Arm(std::string_view site, uint32_t period,
                          uint32_t arg_ms) {
  const SiteInfo* info = nullptr;
  for (const SiteInfo& s : SiteCatalog()) {
    if (site == s.name) {
      info = &s;
      break;
    }
  }
  if (info == nullptr) {
    std::string known;
    for (const SiteInfo& s : SiteCatalog()) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    return InvalidArgumentError("unknown fault site '" + std::string(site) +
                                "' (known: " + known + ")");
  }
  if (period == 0) {
    return InvalidArgumentError("fault site '" + std::string(site) +
                                "': period must be >= 1");
  }
  if (arg_ms == 0) {
    arg_ms = info->kind == FaultKind::kStall    ? kDefaultStallMs
             : info->kind == FaultKind::kClockSkew ? kDefaultSkewMs
                                                   : 0;
  }
  Site armed;
  armed.kind = info->kind;
  armed.period = period;
  armed.arg_ms = arg_ms;
  armed.counter = obs::MetricsRegistry::Default().GetCounter(
      std::string("cfgtag_faults_injected_total{site=\"") +
          std::string(site) + "\"}",
      "Faults fired at this site");
  {
    std::lock_guard<std::mutex> lock(mu_);
    Site& slot = sites_[std::string(site)];
    const uint64_t hits = slot.hits, fired = slot.fired;
    slot = armed;
    slot.hits = hits;
    slot.fired = fired;
  }
  armed_state_.store(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status FaultInjector::ArmFromSpec(std::string_view spec) {
  struct Entry {
    std::string site;
    uint32_t period = 1;
    uint32_t arg_ms = 0;
  };
  std::vector<Entry> entries;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding spaces.
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item.empty()) continue;
    Entry e;
    const size_t c1 = item.find(':');
    e.site = std::string(item.substr(0, c1));
    auto parse_u32 = [](std::string_view v, uint32_t* out) {
      if (v.empty() || v.size() > 9) return false;
      uint32_t n = 0;
      for (char c : v) {
        if (c < '0' || c > '9') return false;
        n = n * 10 + static_cast<uint32_t>(c - '0');
      }
      *out = n;
      return true;
    };
    if (c1 != std::string_view::npos) {
      std::string_view rest = item.substr(c1 + 1);
      const size_t c2 = rest.find(':');
      std::string_view period_s = rest.substr(0, c2);
      if (!parse_u32(period_s, &e.period) || e.period == 0) {
        return InvalidArgumentError("fault spec '" + std::string(item) +
                                    "': bad period");
      }
      if (c2 != std::string_view::npos) {
        if (!parse_u32(rest.substr(c2 + 1), &e.arg_ms)) {
          return InvalidArgumentError("fault spec '" + std::string(item) +
                                      "': bad arg_ms");
        }
      }
    }
    entries.push_back(std::move(e));
  }
  if (entries.empty()) {
    return InvalidArgumentError("empty fault spec");
  }
  // Validate everything before arming anything: a half-armed spec is
  // harder to reason about than a rejected one.
  for (const Entry& e : entries) {
    bool known = false;
    for (const SiteInfo& s : SiteCatalog()) {
      if (e.site == s.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Arm(e.site, e.period, e.arg_ms);  // produces the catalog error
    }
  }
  for (const Entry& e : entries) {
    CFGTAG_RETURN_IF_ERROR(Arm(e.site, e.period, e.arg_ms));
  }
  return Status::Ok();
}

void FaultInjector::DisarmAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sites_.clear();
  }
  armed_state_.store(0, std::memory_order_relaxed);
}

uint64_t FaultInjector::injected_at(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.fired;
}

bool FaultInjector::Evaluate(const char* site, FaultKind kind,
                             uint32_t* arg_ms) {
  obs::Counter* counter = nullptr;
  uint64_t hits = 0;
  uint32_t period = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end() || it->second.kind != kind) return false;
    Site& s = it->second;
    hits = ++s.hits;
    period = s.period;
    if (hits % period != 0) return false;
    ++s.fired;
    *arg_ms = s.arg_ms;
    counter = s.counter;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  TotalCounter()->Increment();
  if (counter != nullptr) counter->Increment();
  obs::RecordEvent(obs::EventKind::kFaultInjected,
                   static_cast<int64_t>(hits),
                   static_cast<int64_t>(period), site);
  return true;
}

bool FaultInjector::ShouldFailSlow(const char* site) {
  uint32_t arg_ms = 0;
  return Evaluate(site, FaultKind::kError, &arg_ms);
}

void FaultInjector::MaybeStallSlow(const char* site) {
  uint32_t arg_ms = 0;
  if (Evaluate(site, FaultKind::kStall, &arg_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(arg_ms));
  }
}

std::chrono::nanoseconds FaultInjector::ClockSkewSlow(const char* site) {
  uint32_t arg_ms = 0;
  if (Evaluate(site, FaultKind::kClockSkew, &arg_ms)) {
    return std::chrono::milliseconds(arg_ms);
  }
  return std::chrono::nanoseconds(0);
}

}  // namespace cfgtag::core::resilience
