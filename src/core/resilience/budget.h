#ifndef CFGTAG_CORE_RESILIENCE_BUDGET_H_
#define CFGTAG_CORE_RESILIENCE_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace cfgtag::core::resilience {

// How far the process has degraded under memory pressure. Rungs are
// ordered: each one implies everything above it, so a single rung value
// describes the whole ladder state.
enum class DegradationRung : int {
  kNone = 0,
  kShedDfa = 1,          // lazy-DFA sessions stop growing caches (fused)
  kTrimPools = 2,        // session pools trim idle scratch to the floor
  kArtifactReadOnly = 3, // artifact compile cache stops storing new entries
};

const char* DegradationRungName(DegradationRung rung);

// A process-wide byte ceiling for the engine's discretionary memory: lazy-
// DFA transition caches, loaded artifacts, and (indirectly) pooled session
// scratch. Components Charge/Release as they grow and shrink; the budget
// tracks usage against the limit and walks a degradation ladder instead of
// failing outright:
//
//   usage >= 85% of limit  -> kShedDfa          (stop growing DFA caches)
//   usage >= 95% of limit  -> kTrimPools        (trim idle pooled sessions)
//   usage >= 100% of limit -> kArtifactReadOnly (stop storing new artifacts;
//                             TryCharge admissions are denied)
//
// Rungs release with 5-point hysteresis (e.g. kShedDfa clears below 80%)
// so a component oscillating around a threshold does not flap the ladder.
// With no limit set (the default) every charge is admitted and the rung
// stays kNone; the hot-path queries below are one relaxed load either way.
class ResourceBudget {
 public:
  // The process-wide budget every built-in component registers against.
  static ResourceBudget& Process();

  // Sets the ceiling in bytes; 0 = unlimited. Re-evaluates the rung
  // immediately, so lowering the limit under live load degrades at once.
  void SetLimit(uint64_t bytes);

  // Records growth that already happened (the component owns the memory
  // either way — denying it would leave the accounting wrong). Drives the
  // ladder but never fails.
  void Charge(uint64_t bytes, const char* component);

  // Admission-checked charge for growth that can be refused outright
  // (loading another artifact, say). Denies when the charge would exceed
  // the limit, counting the denial and pinning the ladder at the top rung.
  // Honors the "budget.charge" fault site.
  Status TryCharge(uint64_t bytes, const char* component);

  void Release(uint64_t bytes);

  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  DegradationRung rung() const {
    return static_cast<DegradationRung>(
        rung_.load(std::memory_order_relaxed));
  }

  // Hot-path queries, one relaxed load each. Each rung implies the ones
  // below it, so ShouldTrimPools() is true at kArtifactReadOnly too.
  bool ShouldShedDfa() const {
    return rung_.load(std::memory_order_relaxed) >=
           static_cast<int>(DegradationRung::kShedDfa);
  }
  bool ShouldTrimPools() const {
    return rung_.load(std::memory_order_relaxed) >=
           static_cast<int>(DegradationRung::kTrimPools);
  }
  bool ArtifactCacheReadOnly() const {
    return rung_.load(std::memory_order_relaxed) >=
           static_cast<int>(DegradationRung::kArtifactReadOnly);
  }

  // Restores the unlimited, undegraded state and zeroes usage (tests).
  void ResetForTest();

 private:
  ResourceBudget() = default;

  // Recomputes the rung from current usage and publishes transitions
  // (metrics + flight-recorder events). Serialized by mu_ so concurrent
  // chargers cannot interleave a climb and a descent out of order.
  void Reevaluate();

  // Stores `next` and publishes the transition. Caller holds mu_.
  void PublishRung(DegradationRung next);

  std::atomic<uint64_t> limit_{0};
  std::atomic<uint64_t> used_{0};
  std::atomic<int> rung_{0};
  std::mutex mu_;  // serializes Reevaluate transitions only
};

// RAII accumulator for one component's budget footprint. Add() forwards
// deltas to ResourceBudget::Process().Charge; the destructor releases
// whatever is still held. Move-aware so owning objects (LazyDfaSession)
// keep their implicit move semantics: the source is left holding zero.
class ScopedCharge {
 public:
  explicit ScopedCharge(const char* component) : component_(component) {}
  ~ScopedCharge() { ReleaseAll(); }

  ScopedCharge(ScopedCharge&& other) noexcept
      : component_(other.component_), held_(other.held_) {
    other.held_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      component_ = other.component_;
      held_ = other.held_;
      other.held_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  void Add(uint64_t bytes) {
    if (bytes == 0) return;
    ResourceBudget::Process().Charge(bytes, component_);
    held_ += bytes;
  }

  void ReleaseAll() {
    if (held_ != 0) {
      ResourceBudget::Process().Release(held_);
      held_ = 0;
    }
  }

  uint64_t held() const { return held_; }

 private:
  const char* component_;
  uint64_t held_ = 0;
};

}  // namespace cfgtag::core::resilience

#endif  // CFGTAG_CORE_RESILIENCE_BUDGET_H_
