#include "core/resilience/deadline.h"

#include "obs/events.h"
#include "obs/metrics.h"

namespace cfgtag::core::resilience {

namespace {

obs::Counter* DeadlineCounter() {
  static obs::Counter* const kCounter =
      obs::MetricsRegistry::Default().GetCounter(
          "cfgtag_deadline_exceeded_total",
          "Controlled scans aborted because their deadline expired");
  return kCounter;
}

obs::Counter* CancelledCounter() {
  static obs::Counter* const kCounter =
      obs::MetricsRegistry::Default().GetCounter(
          "cfgtag_scan_cancelled_total",
          "Controlled scans aborted by an observed CancelToken");
  return kCounter;
}

}  // namespace

Status ScanControl::Check() const {
  if (cancel.cancelled()) {
    return CancelledError("scan cancelled");
  }
  if (deadline.expired()) {
    return DeadlineExceededError("scan deadline exceeded");
  }
  return Status::Ok();
}

void CountControlTrip(const Status& status, uint64_t consumed_bytes,
                      uint64_t total_bytes, const char* where) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      DeadlineCounter()->Increment();
      obs::RecordEvent(obs::EventKind::kDeadlineExceeded,
                       static_cast<int64_t>(consumed_bytes),
                       static_cast<int64_t>(total_bytes), where);
      break;
    case StatusCode::kCancelled:
      CancelledCounter()->Increment();
      obs::RecordEvent(obs::EventKind::kScanCancelled,
                       static_cast<int64_t>(consumed_bytes),
                       static_cast<int64_t>(total_bytes), where);
      break;
    default:
      break;
  }
}

}  // namespace cfgtag::core::resilience
