#ifndef CFGTAG_RTL_OPTIMIZE_H_
#define CFGTAG_RTL_OPTIMIZE_H_

#include <cstdint>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

struct OptimizeStats {
  size_t gates_before = 0;
  size_t gates_after = 0;
  size_t regs_before = 0;
  size_t regs_after = 0;
  // How many gate lookups hit the structural-hash table.
  size_t cse_hits = 0;
};

// Light logic optimization over a netlist, returning a fresh netlist that
// computes the same function at every output and register:
//
//   * constant propagation (gates with constant inputs fold),
//   * structural hashing / common-subexpression elimination (identical
//     gates over identical inputs merge — commutative inputs sorted),
//   * buffer sweeping (kBuf nodes collapse into their drivers),
//   * dead logic removal (anything not reachable from an output or a
//     register pin disappears).
//
// Register semantics (enables, init values, feedback) are preserved, and
// registers are never merged: two registers with identical inputs remain
// distinct (they may be fan-out replicas placed apart — merging them would
// undo the §5.2 replication). Scopes and names carry over.
//
// This models what a synthesis front end does before mapping; it is OFF by
// default in the generator flow so Table 1 reports the raw generated
// structure, and the ablation bench quantifies what it saves.
StatusOr<Netlist> Optimize(const Netlist& input, OptimizeStats* stats);

// Random-simulation equivalence check: drives both netlists with `vectors`
// random input sequences of `cycles` cycles (inputs matched by name) and
// compares every output (matched by name) after each cycle. Returns an
// error describing the first mismatch; OK means no counterexample found.
Status CheckEquivalent(const Netlist& a, const Netlist& b, int vectors,
                       int cycles, uint64_t seed);

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_OPTIMIZE_H_
