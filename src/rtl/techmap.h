#ifndef CFGTAG_RTL_TECHMAP_H_
#define CFGTAG_RTL_TECHMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// Result of covering a gate netlist with k-input LUTs. Self-contained: the
// mapped design has its own net ids because wide gates are decomposed into
// trees whose interior nodes have no netlist counterpart. This mirrors what
// a vendor synthesis flow reports — LUT/FF counts plus the load graph
// needed for fan-out-driven timing analysis.
struct MappedNetlist {
  using NetId = uint32_t;
  static constexpr NetId kNoNet = static_cast<NetId>(-1);

  enum class NetKind : uint8_t { kConst, kInput, kReg, kLut };

  // A net driver in the mapped design.
  struct Net {
    NetKind kind = NetKind::kConst;
    // The originating netlist node, when one exists (inputs, registers, and
    // LUTs rooted at an original gate). kInvalidNode for decomposition
    // interior LUTs.
    NodeId orig = kInvalidNode;
    // For kLut: nets feeding the LUT (<= lut_inputs of them).
    std::vector<NetId> inputs;
    // Number of sink pins (LUT inputs, register D/enable, output ports).
    uint32_t fanout = 0;
    std::string name;
    // Area-attribution scope of the originating node ("" when unscoped).
    std::string scope;
  };

  struct RegPins {
    NetId d = kNoNet;
    NetId enable = kNoNet;  // kNoNet when always enabled
  };

  struct OutputPin {
    NetId net = kNoNet;
    std::string name;
  };

  int lut_inputs = 4;
  std::vector<Net> nets;
  std::vector<NetId> reg_nets;    // nets with kind kReg
  std::vector<RegPins> reg_pins;  // parallel to reg_nets
  std::vector<NetId> input_nets;
  std::vector<OutputPin> outputs;

  size_t NumLuts() const {
    size_t n = 0;
    for (const Net& net : nets) n += (net.kind == NetKind::kLut);
    return n;
  }
  size_t NumFfs() const { return reg_nets.size(); }

  // Maximum fan-out over all nets, and the id of a net achieving it.
  NetId MaxFanoutNet() const;
};

// LUT/FF counts per netlist scope (see Netlist::SetScope) — the module
// breakdown a synthesis report would show. Buckets appear in first-seen
// order; unscoped logic lands in the "" bucket.
struct AreaBucket {
  std::string scope;
  size_t luts = 0;
  size_t ffs = 0;
};
std::vector<AreaBucket> BreakdownByScope(const MappedNetlist& mapped);

// Covers the combinational portion of a netlist with k-input LUTs.
//
// The algorithm decomposes arbitrary-fan-in gates into 2-input gates, then
// grows a cut for every gate in topological order, absorbing single-fan-out
// fan-in gates while the cut stays within k leaves, and finally extracts
// the cover reachable from registers and output ports. It is a deliberately
// simple depth-oblivious mapper: the generated circuits are pipelined at
// every logic level, so area (LUT count) is the quantity that matters.
class TechMapper {
 public:
  explicit TechMapper(int lut_inputs = 4);

  StatusOr<MappedNetlist> Map(const Netlist& netlist) const;

 private:
  int lut_inputs_;
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_TECHMAP_H_
