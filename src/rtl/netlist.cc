#include "rtl/netlist.h"

#include <algorithm>
#include <unordered_set>

namespace cfgtag::rtl {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConst0: return "const0";
    case NodeKind::kConst1: return "const1";
    case NodeKind::kInput: return "input";
    case NodeKind::kAnd: return "and";
    case NodeKind::kOr: return "or";
    case NodeKind::kNot: return "not";
    case NodeKind::kXor: return "xor";
    case NodeKind::kBuf: return "buf";
    case NodeKind::kReg: return "reg";
  }
  return "?";
}

Netlist::Netlist() {
  nodes_.push_back(Node{NodeKind::kConst0, {}, kInvalidNode, false, "const0"});
  nodes_.push_back(Node{NodeKind::kConst1, {}, kInvalidNode, false, "const1"});
}

NodeId Netlist::AddNode(Node node) {
  node.scope = current_scope_;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Netlist::SetScope(const std::string& label) {
  for (size_t i = 0; i < scopes_.size(); ++i) {
    if (scopes_[i] == label) {
      current_scope_ = static_cast<uint16_t>(i);
      return;
    }
  }
  scopes_.push_back(label);
  current_scope_ = static_cast<uint16_t>(scopes_.size() - 1);
}

NodeId Netlist::AddInput(std::string name) {
  NodeId id = AddNode(Node{NodeKind::kInput, {}, kInvalidNode, false,
                           std::move(name)});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::And(std::vector<NodeId> inputs) {
  std::vector<NodeId> kept;
  kept.reserve(inputs.size());
  for (NodeId in : inputs) {
    if (in == Const0()) return Const0();
    if (in == Const1()) continue;  // neutral element
    kept.push_back(in);
  }
  if (kept.empty()) return Const1();
  if (kept.size() == 1) return kept[0];
  return AddNode(Node{NodeKind::kAnd, std::move(kept), kInvalidNode, false, ""});
}

NodeId Netlist::Or(std::vector<NodeId> inputs) {
  std::vector<NodeId> kept;
  kept.reserve(inputs.size());
  for (NodeId in : inputs) {
    if (in == Const1()) return Const1();
    if (in == Const0()) continue;  // neutral element
    kept.push_back(in);
  }
  if (kept.empty()) return Const0();
  if (kept.size() == 1) return kept[0];
  return AddNode(Node{NodeKind::kOr, std::move(kept), kInvalidNode, false, ""});
}

NodeId Netlist::Not(NodeId input) {
  if (input == Const0()) return Const1();
  if (input == Const1()) return Const0();
  // Fold double negation.
  if (nodes_[input].kind == NodeKind::kNot) return nodes_[input].fanin[0];
  return AddNode(Node{NodeKind::kNot, {input}, kInvalidNode, false, ""});
}

NodeId Netlist::Xor(NodeId a, NodeId b) {
  if (a == Const0()) return b;
  if (b == Const0()) return a;
  if (a == Const1()) return Not(b);
  if (b == Const1()) return Not(a);
  return AddNode(Node{NodeKind::kXor, {a, b}, kInvalidNode, false, ""});
}

NodeId Netlist::Buf(NodeId input, std::string name) {
  return AddNode(
      Node{NodeKind::kBuf, {input}, kInvalidNode, false, std::move(name)});
}

NodeId Netlist::Reg(NodeId d, NodeId enable, bool init, std::string name) {
  return AddNode(Node{NodeKind::kReg, {d}, enable, init, std::move(name)});
}

NodeId Netlist::DelayLine(NodeId d, int depth) {
  NodeId cur = d;
  for (int i = 0; i < depth; ++i) cur = Reg(cur);
  return cur;
}

std::pair<NodeId, int> Netlist::PipelinedOr(std::vector<NodeId> inputs,
                                            int arity) {
  int depth = 0;
  while (inputs.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((inputs.size() + arity - 1) / arity);
    for (size_t i = 0; i < inputs.size(); i += arity) {
      std::vector<NodeId> group(
          inputs.begin() + i,
          inputs.begin() + std::min(inputs.size(), i + arity));
      next.push_back(Reg(Or(std::move(group))));
    }
    inputs = std::move(next);
    ++depth;
  }
  if (inputs.empty()) return {Const0(), 0};
  return {inputs[0], depth};
}

NodeId Netlist::RegPlaceholder(NodeId enable, bool init, std::string name) {
  return AddNode(
      Node{NodeKind::kReg, {Const0()}, enable, init, std::move(name)});
}

void Netlist::SetRegD(NodeId reg, NodeId d) {
  nodes_[reg].fanin[0] = d;
}

void Netlist::SetRegEnable(NodeId reg, NodeId enable) {
  nodes_[reg].enable = enable;
}

void Netlist::MarkOutput(NodeId node, std::string name) {
  outputs_.push_back(OutputPort{std::move(name), node});
}

void Netlist::SetName(NodeId node, std::string name) {
  nodes_[node].name = std::move(name);
}

NodeId Netlist::FindByName(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name && !name.empty()) return i;
  }
  return kInvalidNode;
}

Status Netlist::Validate() const {
  std::unordered_set<std::string> port_names;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (NodeId in : n.fanin) {
      if (in >= nodes_.size()) {
        return InternalError("node " + std::to_string(i) +
                             " references out-of-range fan-in");
      }
      // Combinational nodes must only reference earlier nodes — this is
      // what lets the simulator settle in one in-order sweep. Registers
      // are the only legal feedback points.
      if (n.kind != NodeKind::kReg && in >= i) {
        return InternalError("combinational node " + std::to_string(i) +
                             " references a later node (feedback must go "
                             "through a register)");
      }
    }
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
        if (!n.fanin.empty()) {
          return InternalError("source node with fan-in");
        }
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr:
        if (n.fanin.size() < 2) {
          return InternalError("and/or gate with fan-in < 2");
        }
        break;
      case NodeKind::kNot:
      case NodeKind::kBuf:
        if (n.fanin.size() != 1) {
          return InternalError("not/buf gate with fan-in != 1");
        }
        break;
      case NodeKind::kXor:
        if (n.fanin.size() != 2) {
          return InternalError("xor gate with fan-in != 2");
        }
        break;
      case NodeKind::kReg:
        if (n.fanin.size() != 1) {
          return InternalError("register with fan-in != 1");
        }
        if (n.enable != kInvalidNode && n.enable >= nodes_.size()) {
          return InternalError("register enable out of range");
        }
        break;
    }
    if (n.kind == NodeKind::kInput) {
      if (n.name.empty()) return InternalError("unnamed input port");
      if (!port_names.insert("i:" + n.name).second) {
        return InternalError("duplicate input name: " + n.name);
      }
    }
  }
  for (const OutputPort& out : outputs_) {
    if (out.name.empty()) return InternalError("unnamed output port");
    if (out.node >= nodes_.size()) {
      return InternalError("output references out-of-range node");
    }
    if (!port_names.insert("o:" + out.name).second) {
      return InternalError("duplicate output name: " + out.name);
    }
  }
  return Status::Ok();
}

Netlist::Stats Netlist::ComputeStats() const {
  Stats s;
  s.num_inputs = inputs_.size();
  s.num_outputs = outputs_.size();
  // Combinational depth via DP over node ids. Fan-ins always precede their
  // users (the builder API only references existing nodes), so a single
  // forward pass suffices. Registers and sources have depth 0.
  std::vector<uint32_t> depth(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kReg:
        s.num_regs += (n.kind == NodeKind::kReg);
        depth[i] = 0;
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kNot:
      case NodeKind::kXor:
      case NodeKind::kBuf: {
        uint32_t d = 0;
        for (NodeId in : n.fanin) d = std::max(d, depth[in]);
        depth[i] = d + 1;
        s.num_gates++;
        s.comb_depth = std::max<size_t>(s.comb_depth, depth[i]);
        switch (n.kind) {
          case NodeKind::kAnd: s.num_and++; break;
          case NodeKind::kOr: s.num_or++; break;
          case NodeKind::kNot: s.num_not++; break;
          case NodeKind::kXor: s.num_xor++; break;
          case NodeKind::kBuf: s.num_buf++; break;
          default: break;
        }
        break;
      }
    }
  }
  return s;
}

}  // namespace cfgtag::rtl
