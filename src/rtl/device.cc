#include "rtl/device.h"

#include <cmath>

namespace cfgtag::rtl {

double Device::RouteDelayNs(uint32_t fanout) const {
  if (fanout == 0) return 0.0;
  return route_base_ns + route_fanout_ns * std::sqrt(static_cast<double>(fanout));
}

// Calibration: the Virtex-4 constants are fitted so the generated XML-RPC
// tagger reproduces the two Table 1 anchor points — 533 MHz at 300 pattern
// bytes and ~316 MHz at 3000 pattern bytes (where the decoded-character
// fan-out reaches the high hundreds and its routing delay approaches the
// paper's "just under 2 ns"). Interior sweep points are predictions of the
// model, compared against the paper in EXPERIMENTS.md. The Virtex-E is the
// same fit scaled by the 180 nm / 90 nm generation gap (x2.72, the ratio of
// the two devices' 300-byte frequencies in Table 1).

Device VirtexE2000() {
  Device d;
  d.name = "VirtexE 2000";
  d.lut_inputs = 4;
  d.t_lut_ns = 0.545;
  d.t_clk2q_ns = 0.25;
  d.t_setup_ns = 0.19;
  d.route_base_ns = 0.345;
  d.route_fanout_ns = 0.194;
  d.max_freq_mhz = 250.0;
  d.capacity_luts = 38400;
  return d;
}

Device Virtex4LX200() {
  Device d;
  d.name = "Virtex4 LX200";
  d.lut_inputs = 4;
  d.t_lut_ns = 0.20;
  d.t_clk2q_ns = 0.09;
  d.t_setup_ns = 0.07;
  d.route_base_ns = 0.127;
  d.route_fanout_ns = 0.0713;
  d.max_freq_mhz = 600.0;
  d.capacity_luts = 178176;
  return d;
}

}  // namespace cfgtag::rtl
