#ifndef CFGTAG_RTL_NETLIST_H_
#define CFGTAG_RTL_NETLIST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cfgtag::rtl {

// Index of a node within a Netlist. Node 0/1 are the constant drivers.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : uint8_t {
  kConst0,
  kConst1,
  kInput,  // primary input, driven by the testbench every cycle
  kAnd,    // arbitrary fan-in
  kOr,     // arbitrary fan-in
  kNot,    // single fan-in
  kXor,    // exactly two fan-ins
  kBuf,    // single fan-in (used to name nets / model fan-out buffers)
  kReg,    // D flip-flop: fanin[0] = D; optional clock-enable
};

const char* NodeKindName(NodeKind kind);

struct Node {
  NodeKind kind = NodeKind::kConst0;
  std::vector<NodeId> fanin;
  // For kReg only: clock-enable net. kInvalidNode means always enabled.
  NodeId enable = kInvalidNode;
  // For kReg only: power-on value.
  bool init = false;
  // Debug / port name. Mandatory for kInput, optional elsewhere.
  std::string name;
  // Index into the netlist's scope table (0 = unscoped). Set from the
  // builder's current scope; used for area attribution after mapping.
  uint16_t scope = 0;
};

struct OutputPort {
  std::string name;
  NodeId node;
};

class Netlist;

// Defined in serialize.h; friend of Netlist so the loader can reconstruct
// nodes with exact ids (the builder API folds, which would renumber).
StatusOr<Netlist> ParseNetlist(const std::string& text);

// A flat, single-clock gate-level netlist. This is the hardware IR the
// generator emits; the simulator, technology mapper, timing analyzer and
// VHDL emitter all consume it.
//
// Gates have arbitrary fan-in (decomposition into k-input LUTs happens in
// the technology mapper). Registers are positive-edge DFFs with an optional
// clock enable — the two primitives the paper's architecture uses.
class Netlist {
 public:
  Netlist();

  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;
  Netlist(Netlist&&) = default;
  Netlist& operator=(Netlist&&) = default;

  NodeId Const0() const { return 0; }
  NodeId Const1() const { return 1; }

  NodeId AddInput(std::string name);

  // Gate constructors. Degenerate arities fold to simpler nodes:
  // And({}) == Const1, Or({}) == Const0, And({x}) == x, Or({x}) == x.
  // Constant inputs are folded (And with Const0 -> Const0, etc.).
  NodeId And(std::vector<NodeId> inputs);
  NodeId Or(std::vector<NodeId> inputs);
  NodeId Not(NodeId input);
  NodeId Xor(NodeId a, NodeId b);
  NodeId Buf(NodeId input, std::string name = "");

  NodeId And2(NodeId a, NodeId b) { return And({a, b}); }
  NodeId Or2(NodeId a, NodeId b) { return Or({a, b}); }
  // a AND (NOT b) — the inhibition shape used by longest-match look-ahead.
  NodeId AndNot(NodeId a, NodeId b) { return And({a, Not(b)}); }

  // D flip-flop. `enable` of kInvalidNode means the register loads every
  // cycle; otherwise it holds its value when the enable net is low.
  NodeId Reg(NodeId d, NodeId enable = kInvalidNode, bool init = false,
             std::string name = "");

  // A chain of `depth` always-enabled registers (pipeline delay line).
  NodeId DelayLine(NodeId d, int depth);

  // Reduction OR tree with a register after every level, `arity` inputs per
  // gate (one LUT level per pipeline stage). Returns the root and the
  // number of register stages inserted (0 when inputs collapse to a single
  // node). Inputs of size 0/1 fold like Or().
  std::pair<NodeId, int> PipelinedOr(std::vector<NodeId> inputs,
                                     int arity = 4);

  // Creates a register whose D input is wired up later with SetRegD().
  // Needed for feedback loops (e.g. a state bit whose next value depends on
  // itself). The placeholder D is Const0 until patched.
  NodeId RegPlaceholder(NodeId enable = kInvalidNode, bool init = false,
                        std::string name = "");
  void SetRegD(NodeId reg, NodeId d);
  void SetRegEnable(NodeId reg, NodeId enable);

  void MarkOutput(NodeId node, std::string name);
  void SetName(NodeId node, std::string name);

  // Area-attribution scopes: every node created after SetScope(label) is
  // stamped with that label until the next SetScope. Labels are interned;
  // SetScope("") returns to unscoped.
  void SetScope(const std::string& label);
  const std::string& ScopeName(uint16_t scope_id) const {
    return scopes_[scope_id];
  }
  const std::string& NodeScope(NodeId id) const {
    return scopes_[nodes_[id].scope];
  }
  const std::string& CurrentScope() const { return scopes_[current_scope_]; }

  size_t NumNodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  // Looks up an input or named node by name; kInvalidNode if absent.
  NodeId FindByName(const std::string& name) const;

  // Structural sanity: every fan-in reference is in range, arities match
  // node kinds, input/output names are unique and non-empty.
  Status Validate() const;

  struct Stats {
    size_t num_inputs = 0;
    size_t num_outputs = 0;
    size_t num_gates = 0;  // and/or/not/xor/buf
    size_t num_regs = 0;
    size_t num_and = 0;
    size_t num_or = 0;
    size_t num_not = 0;
    size_t num_xor = 0;
    size_t num_buf = 0;
    // Longest chain of gates between register/input boundaries.
    size_t comb_depth = 0;
  };
  Stats ComputeStats() const;

 private:
  friend StatusOr<Netlist> ParseNetlist(const std::string& text);

  NodeId AddNode(Node node);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<OutputPort> outputs_;
  std::vector<std::string> scopes_ = {""};
  uint16_t current_scope_ = 0;
};

// RAII helper: sets a scope for the enclosing block, restoring on exit.
class ScopedNetlistScope {
 public:
  ScopedNetlistScope(Netlist* netlist, const std::string& label)
      : netlist_(netlist), saved_(netlist->CurrentScope()) {
    netlist_->SetScope(label);
  }
  ~ScopedNetlistScope() { netlist_->SetScope(saved_); }

  ScopedNetlistScope(const ScopedNetlistScope&) = delete;
  ScopedNetlistScope& operator=(const ScopedNetlistScope&) = delete;

 private:
  Netlist* netlist_;
  std::string saved_;
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_NETLIST_H_
