#ifndef CFGTAG_RTL_VHDL_TESTBENCH_H_
#define CFGTAG_RTL_VHDL_TESTBENCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// One expected observation in a generated VHDL testbench: after `cycle`
// clock edges, output port `port` must read `value`.
struct TestbenchCheck {
  uint64_t cycle = 0;
  std::string port;
  bool value = false;
};

// Byte stimulus for an 8-bit-wide data port group (d0..d7 or lK_d0..lK_d7).
struct TestbenchStimulus {
  // Bytes presented per cycle; bytes[c][k] is lane k's byte at cycle c.
  std::vector<std::vector<unsigned char>> bytes;
  int lanes = 1;
};

// Emits a self-checking VHDL testbench for a design produced by
// VhdlEmitter::Emit(netlist, entity_name): it instantiates the entity,
// generates a clock, applies the byte stimulus, and asserts every check,
// reporting failures via VHDL `assert`. This is the hand-off artifact for
// users with a real simulator (GHDL/ModelSim) who want to confirm the
// exported design against the tags this library computed.
StatusOr<std::string> EmitVhdlTestbench(const Netlist& netlist,
                                        const std::string& entity_name,
                                        const TestbenchStimulus& stimulus,
                                        const std::vector<TestbenchCheck>& checks);

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_VHDL_TESTBENCH_H_
