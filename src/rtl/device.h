#ifndef CFGTAG_RTL_DEVICE_H_
#define CFGTAG_RTL_DEVICE_H_

#include <string>

namespace cfgtag::rtl {

// Analytical FPGA device model used by the timing analyzer.
//
// This replaces the vendor place-and-route flow the paper used (Synplify
// Pro 8.1 + Xilinx ISE 7.1). A register-to-register path through one level
// of logic costs
//
//   t_clk2q + t_lut + t_route(fanout) + t_setup
//
// where t_route(f) = route_base_ns + route_fanout_ns * sqrt(f): the loads
// of a net occupy a placement region whose area grows linearly with the
// number of loads, so the worst wire length — and with it the routing
// delay — grows with the square root of the fan-out. This reproduces the
// paper's observed mechanism: the critical path of large grammars is
// *routing* delay on high-fan-out decoded-character bits (§4.3, "just
// under 2 ns" at 3000 pattern bytes), not logic delay.
//
// The constants below are calibrated against the two Table 1 anchor points
// per device (300-byte XML-RPC grammar, and for the Virtex 4 also the
// 3000-byte grammar); interior sweep points are predictions.
struct Device {
  std::string name;
  int lut_inputs = 4;
  double t_lut_ns = 0.0;           // LUT propagation delay
  double t_clk2q_ns = 0.0;         // register clock-to-out
  double t_setup_ns = 0.0;         // register setup
  double route_base_ns = 0.0;      // per-net routing floor
  double route_fanout_ns = 0.0;    // multiplies sqrt(fanout)
  double max_freq_mhz = 0.0;       // global clock-tree ceiling
  int capacity_luts = 0;

  // Routing delay of a net with `fanout` sink pins.
  double RouteDelayNs(uint32_t fanout) const;
};

// Xilinx Virtex-E 2000 (-8): the 2002-era part the paper's first
// implementation targeted (196 MHz on the 300-byte XML-RPC grammar).
Device VirtexE2000();

// Xilinx Virtex-4 LX200 (-11): the 2005-era part of the main sweep
// (533 MHz at 300 bytes down to ~316 MHz at 3000 bytes).
Device Virtex4LX200();

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_DEVICE_H_
