#include "rtl/serialize.h"

#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace cfgtag::rtl {

namespace {

constexpr char kHeader[] = "cfgtag-netlist-v1";

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  out->append(CEscape(s));
  out->push_back('"');
}

// Token reader over one line: space-separated words plus trailing quoted
// strings.
class LineReader {
 public:
  explicit LineReader(std::string_view line) : line_(line) {}

  bool AtEnd() {
    SkipWs();
    return pos_ >= line_.size();
  }

  StatusOr<std::string> Word() {
    SkipWs();
    if (pos_ >= line_.size()) return InvalidArgumentError("expected word");
    const size_t start = pos_;
    while (pos_ < line_.size() && !std::isspace(
               static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    return std::string(line_.substr(start, pos_ - start));
  }

  StatusOr<uint64_t> Number() {
    CFGTAG_ASSIGN_OR_RETURN(std::string w, Word());
    uint64_t v = 0;
    if (w.empty()) return InvalidArgumentError("expected number");
    for (char c : w) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return InvalidArgumentError("expected number, got '" + w + "'");
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    return v;
  }

  // Parses a C-escaped double-quoted string.
  StatusOr<std::string> Quoted() {
    SkipWs();
    if (pos_ >= line_.size() || line_[pos_] != '"') {
      return InvalidArgumentError("expected quoted string");
    }
    ++pos_;
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c == '\\' && pos_ < line_.size()) {
        const char e = line_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          case 'x': {
            if (pos_ + 1 >= line_.size()) {
              return InvalidArgumentError("bad \\x escape");
            }
            auto hex = [](char h) -> int {
              if (h >= '0' && h <= '9') return h - '0';
              if (h >= 'a' && h <= 'f') return h - 'a' + 10;
              if (h >= 'A' && h <= 'F') return h - 'A' + 10;
              return -1;
            };
            const int hi = hex(line_[pos_]);
            const int lo = hex(line_[pos_ + 1]);
            if (hi < 0 || lo < 0) {
              return InvalidArgumentError("bad \\x escape");
            }
            pos_ += 2;
            c = static_cast<char>(hi * 16 + lo);
            break;
          }
          default:
            c = e;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= line_.size()) {
      return InvalidArgumentError("unterminated quoted string");
    }
    ++pos_;  // closing quote
    return out;
  }

  // Peeks whether the next token starts with the given character.
  bool NextStartsWith(char c) {
    SkipWs();
    return pos_ < line_.size() && line_[pos_] == c;
  }

 private:
  void SkipWs() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view line_;
  size_t pos_ = 0;
};

// Safe bounded parse of a decimal node id; Status instead of the throwing
// std::stoul (serialized input is untrusted).
StatusOr<NodeId> ParseNodeId(std::string_view s) {
  if (s.empty()) return InvalidArgumentError("empty node id");
  uint64_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return InvalidArgumentError("bad node id: " + std::string(s));
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > 0xFFFFFFFFull) {
      return InvalidArgumentError("node id out of range: " + std::string(s));
    }
  }
  return static_cast<NodeId>(v);
}

}  // namespace

std::string SerializeNetlist(const Netlist& netlist) {
  std::ostringstream os;
  os << kHeader << "\n";
  // Scope table (index 0 is always the empty scope).
  std::vector<std::string> scopes;
  for (NodeId id = 0; id < netlist.NumNodes(); ++id) {
    const uint16_t s = netlist.node(id).scope;
    if (s >= scopes.size()) scopes.resize(s + 1);
    scopes[s] = netlist.NodeScope(id);
  }
  for (size_t s = 1; s < scopes.size(); ++s) {
    std::string line = "scope " + std::to_string(s) + " ";
    AppendQuoted(&line, scopes[s]);
    os << line << "\n";
  }

  for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
    const Node& n = netlist.node(id);
    std::string line = std::to_string(id) + " ";
    switch (n.kind) {
      case NodeKind::kInput: line += "i"; break;
      case NodeKind::kAnd: line += "a"; break;
      case NodeKind::kOr: line += "o"; break;
      case NodeKind::kNot: line += "n"; break;
      case NodeKind::kXor: line += "x"; break;
      case NodeKind::kBuf: line += "b"; break;
      case NodeKind::kReg: line += "r"; break;
      default: line += "?"; break;
    }
    if (n.kind == NodeKind::kReg) {
      line += " d=" + std::to_string(n.fanin[0]);
      line += " en=";
      line += n.enable == kInvalidNode ? "-" : std::to_string(n.enable);
      line += " init=";
      line += n.init ? "1" : "0";
    } else {
      for (NodeId f : n.fanin) line += " " + std::to_string(f);
    }
    if (n.scope != 0) line += " s" + std::to_string(n.scope);
    if (!n.name.empty()) {
      line += " ";
      AppendQuoted(&line, n.name);
    }
    os << line << "\n";
  }
  for (const OutputPort& out : netlist.outputs()) {
    std::string line = "out " + std::to_string(out.node) + " ";
    AppendQuoted(&line, out.name);
    os << line << "\n";
  }
  return os.str();
}

StatusOr<Netlist> ParseNetlist(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || StripWhitespace(line) != kHeader) {
    return InvalidArgumentError("missing netlist header");
  }

  Netlist nl;
  std::vector<std::string> scopes = {""};

  while (std::getline(is, line)) {
    if (StripWhitespace(line).empty()) continue;
    LineReader reader(line);
    CFGTAG_ASSIGN_OR_RETURN(std::string first, reader.Word());

    if (first == "scope") {
      CFGTAG_ASSIGN_OR_RETURN(uint64_t index, reader.Number());
      CFGTAG_ASSIGN_OR_RETURN(std::string name, reader.Quoted());
      if (index != scopes.size()) {
        return InvalidArgumentError("scope table out of order");
      }
      scopes.push_back(std::move(name));
      continue;
    }
    if (first == "out") {
      CFGTAG_ASSIGN_OR_RETURN(uint64_t id, reader.Number());
      CFGTAG_ASSIGN_OR_RETURN(std::string name, reader.Quoted());
      nl.MarkOutput(static_cast<NodeId>(id), std::move(name));
      continue;
    }

    // A node line: "<id> <kind> ...".
    uint64_t id = 0;
    for (char c : first) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return InvalidArgumentError("bad node id: " + first);
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (id != nl.NumNodes()) {
      return InvalidArgumentError("node ids must be dense and ordered, got " +
                                  first);
    }
    CFGTAG_ASSIGN_OR_RETURN(std::string kind, reader.Word());

    Node node;
    if (kind == "i") {
      node.kind = NodeKind::kInput;
    } else if (kind == "a") {
      node.kind = NodeKind::kAnd;
    } else if (kind == "o") {
      node.kind = NodeKind::kOr;
    } else if (kind == "n") {
      node.kind = NodeKind::kNot;
    } else if (kind == "x") {
      node.kind = NodeKind::kXor;
    } else if (kind == "b") {
      node.kind = NodeKind::kBuf;
    } else if (kind == "r") {
      node.kind = NodeKind::kReg;
    } else {
      return InvalidArgumentError("unknown node kind: " + kind);
    }

    if (node.kind == NodeKind::kReg) {
      CFGTAG_ASSIGN_OR_RETURN(std::string d, reader.Word());
      CFGTAG_ASSIGN_OR_RETURN(std::string en, reader.Word());
      CFGTAG_ASSIGN_OR_RETURN(std::string init, reader.Word());
      if (d.rfind("d=", 0) != 0 || en.rfind("en=", 0) != 0 ||
          init.rfind("init=", 0) != 0) {
        return InvalidArgumentError("malformed register line: " + line);
      }
      CFGTAG_ASSIGN_OR_RETURN(NodeId d_id, ParseNodeId(d.substr(2)));
      node.fanin.push_back(d_id);
      if (en == "en=-") {
        node.enable = kInvalidNode;
      } else {
        CFGTAG_ASSIGN_OR_RETURN(node.enable, ParseNodeId(en.substr(3)));
      }
      node.init = init == "init=1";
    } else if (node.kind != NodeKind::kInput) {
      while (!reader.AtEnd() && !reader.NextStartsWith('"') &&
             !reader.NextStartsWith('s')) {
        CFGTAG_ASSIGN_OR_RETURN(uint64_t f, reader.Number());
        node.fanin.push_back(static_cast<NodeId>(f));
      }
    }
    // Optional scope tag.
    if (reader.NextStartsWith('s')) {
      CFGTAG_ASSIGN_OR_RETURN(std::string s, reader.Word());
      CFGTAG_ASSIGN_OR_RETURN(NodeId index, ParseNodeId(s.substr(1)));
      if (index >= scopes.size()) {
        return InvalidArgumentError("scope index out of range: " + s);
      }
      node.scope = static_cast<uint16_t>(index);
    }
    // Optional name.
    if (reader.NextStartsWith('"')) {
      CFGTAG_ASSIGN_OR_RETURN(node.name, reader.Quoted());
    }
    if (node.kind == NodeKind::kInput && node.name.empty()) {
      return InvalidArgumentError("input without a name: " + line);
    }

    // Install at the exact id (friend access to the raw node table).
    nl.nodes_.push_back(std::move(node));
    if (nl.nodes_.back().kind == NodeKind::kInput) {
      nl.inputs_.push_back(static_cast<NodeId>(id));
    }
    // Keep the scope table in sync.
    while (nl.scopes_.size() < scopes.size()) {
      nl.scopes_.push_back(scopes[nl.scopes_.size()]);
    }
  }
  CFGTAG_RETURN_IF_ERROR(nl.Validate());
  return nl;
}

}  // namespace cfgtag::rtl
