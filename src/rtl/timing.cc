#include "rtl/timing.h"

#include <algorithm>
#include <cstdio>

namespace cfgtag::rtl {

namespace {

std::string FormatNs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ns", ns);
  return buf;
}

}  // namespace

std::string TimingReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "critical path %.3f ns (Fmax %.1f MHz): logic %.3f ns, "
                "routing %.3f ns, clk2q+setup %.3f ns; worst net '%s' "
                "fanout %u route %.3f ns",
                critical_path_ns, fmax_mhz, logic_ns, routing_ns,
                sequencing_ns, worst_net_name.c_str(), worst_net_fanout,
                worst_net_route_ns);
  return buf;
}

StatusOr<TimingReport> TimingAnalyzer::Analyze(const MappedNetlist& mapped,
                                               const Device& device) {
  using NetId = MappedNetlist::NetId;
  const size_t n = mapped.nets.size();
  if (n == 0) return InvalidArgumentError("empty mapped netlist");

  // Topological order over LUT input edges (iterative DFS; the cover
  // extraction order is not topological).
  std::vector<NetId> topo;
  topo.reserve(n);
  std::vector<uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<NetId, size_t>> stack;
  for (NetId root = 0; root < n; ++root) {
    if (state[root] == 2) continue;
    stack.emplace_back(root, 0);
    state[root] = 1;
    while (!stack.empty()) {
      auto& [cur, idx] = stack.back();
      const auto& ins = mapped.nets[cur].inputs;
      if (idx < ins.size()) {
        NetId next = ins[idx++];
        if (state[next] == 0) {
          state[next] = 1;
          stack.emplace_back(next, 0);
        } else if (state[next] == 1) {
          return InternalError("combinational loop in mapped netlist");
        }
      } else {
        state[cur] = 2;
        topo.push_back(cur);
        stack.pop_back();
      }
    }
  }

  // Arrival times and critical predecessor per net.
  std::vector<double> arrival(n, 0.0);
  std::vector<NetId> prev(n, MappedNetlist::kNoNet);
  auto route = [&](NetId id) {
    return device.RouteDelayNs(mapped.nets[id].fanout);
  };
  for (NetId id : topo) {
    const MappedNetlist::Net& net = mapped.nets[id];
    switch (net.kind) {
      case MappedNetlist::NetKind::kConst:
      case MappedNetlist::NetKind::kInput:
        arrival[id] = 0.0;
        break;
      case MappedNetlist::NetKind::kReg:
        arrival[id] = device.t_clk2q_ns;
        break;
      case MappedNetlist::NetKind::kLut: {
        double worst = 0.0;
        NetId worst_in = MappedNetlist::kNoNet;
        for (NetId in : net.inputs) {
          const double t = arrival[in] + route(in);
          if (t >= worst) {
            worst = t;
            worst_in = in;
          }
        }
        arrival[id] = worst + device.t_lut_ns;
        prev[id] = worst_in;
        break;
      }
    }
  }

  // Path endpoints: register D/enable pins (setup) and output ports.
  double critical = 0.0;
  NetId critical_driver = MappedNetlist::kNoNet;
  bool critical_has_setup = false;
  auto consider = [&](NetId driver, bool has_setup) {
    if (driver == MappedNetlist::kNoNet) return;
    if (mapped.nets[driver].kind == MappedNetlist::NetKind::kConst) return;
    const double t =
        arrival[driver] + route(driver) + (has_setup ? device.t_setup_ns : 0.0);
    if (t > critical) {
      critical = t;
      critical_driver = driver;
      critical_has_setup = has_setup;
    }
  };
  for (const MappedNetlist::RegPins& pins : mapped.reg_pins) {
    consider(pins.d, /*has_setup=*/true);
    if (pins.enable != MappedNetlist::kNoNet) {
      consider(pins.enable, /*has_setup=*/true);
    }
  }
  for (const MappedNetlist::OutputPin& pin : mapped.outputs) {
    consider(pin.net, /*has_setup=*/false);
  }

  TimingReport report;
  report.critical_path_ns = critical;
  if (critical > 0.0) {
    report.fmax_mhz = std::min(1000.0 / critical, device.max_freq_mhz);
  } else {
    report.fmax_mhz = device.max_freq_mhz;
  }

  // Reconstruct the critical path and decompose its delay.
  if (critical_driver != MappedNetlist::kNoNet) {
    std::vector<NetId> chain;
    for (NetId cur = critical_driver; cur != MappedNetlist::kNoNet;
         cur = prev[cur]) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());

    double worst_route = -1.0;
    for (size_t i = 0; i < chain.size(); ++i) {
      const NetId id = chain[i];
      const MappedNetlist::Net& net = mapped.nets[id];
      const double r = route(id);
      switch (net.kind) {
        case MappedNetlist::NetKind::kReg:
          report.sequencing_ns += device.t_clk2q_ns;
          break;
        case MappedNetlist::NetKind::kLut:
          report.logic_ns += device.t_lut_ns;
          break;
        default:
          break;
      }
      report.routing_ns += r;
      if (r > worst_route) {
        worst_route = r;
        report.worst_net_fanout = net.fanout;
        report.worst_net_route_ns = r;
        report.worst_net_name =
            net.name.empty() ? ("net" + std::to_string(id)) : net.name;
      }
      TimingPathStep step;
      step.net = id;
      char desc[160];
      std::snprintf(desc, sizeof(desc), "%s %s (fanout %u, route %s)",
                    net.kind == MappedNetlist::NetKind::kLut   ? "LUT"
                    : net.kind == MappedNetlist::NetKind::kReg ? "REG"
                    : net.kind == MappedNetlist::NetKind::kInput ? "IN" : "CONST",
                    net.name.empty() ? ("net" + std::to_string(id)).c_str()
                                     : net.name.c_str(),
                    net.fanout, FormatNs(r).c_str());
      step.description = desc;
      step.arrival_ns = arrival[id];
      report.path.push_back(std::move(step));
    }
    if (critical_has_setup) report.sequencing_ns += device.t_setup_ns;
  }

  return report;
}

}  // namespace cfgtag::rtl
