#ifndef CFGTAG_RTL_VCD_WRITER_H_
#define CFGTAG_RTL_VCD_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "rtl/netlist.h"
#include "rtl/simulator.h"

namespace cfgtag::rtl {

// Streams selected netlist signals to a Value-Change-Dump (IEEE 1364) file
// for waveform debugging. Usage:
//
//   VcdWriter vcd(&os, &netlist);
//   vcd.AddSignal(some_node, "match_if");
//   vcd.WriteHeader();
//   for each cycle { drive inputs; sim.Step(); vcd.Sample(sim); }
class VcdWriter {
 public:
  // Both pointers must outlive the writer.
  VcdWriter(std::ostream* os, const Netlist* netlist);

  void AddSignal(NodeId node, std::string name);
  void WriteHeader();

  // Records the current simulator values; emits only changed signals.
  void Sample(const Simulator& sim);

 private:
  struct Signal {
    NodeId node;
    std::string name;
    std::string code;  // VCD short identifier
    int last = -1;     // -1 = not yet emitted
  };

  std::ostream* os_;
  const Netlist* netlist_;
  std::vector<Signal> signals_;
  uint64_t time_ = 0;
  bool header_written_ = false;
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_VCD_WRITER_H_
