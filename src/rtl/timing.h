#ifndef CFGTAG_RTL_TIMING_H_
#define CFGTAG_RTL_TIMING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/device.h"
#include "rtl/techmap.h"

namespace cfgtag::rtl {

// One hop of the reported critical path.
struct TimingPathStep {
  MappedNetlist::NetId net = MappedNetlist::kNoNet;
  std::string description;  // e.g. "LUT dec_a (fanout 212, route 1.87 ns)"
  double arrival_ns = 0.0;
};

struct TimingReport {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;  // min(1000/critical_path, device ceiling)
  // Decomposition of the critical path.
  double logic_ns = 0.0;
  double routing_ns = 0.0;
  double sequencing_ns = 0.0;  // clk->q + setup
  // The single worst net on the critical path.
  uint32_t worst_net_fanout = 0;
  double worst_net_route_ns = 0.0;
  std::string worst_net_name;
  std::vector<TimingPathStep> path;  // startpoint first

  std::string ToString() const;
};

// Static timing analysis over a LUT-mapped netlist with the analytical
// routing model of `Device`. Combinational loops cannot occur (gates only
// reference earlier nodes by construction), so arrival times are computed
// with one dynamic-programming pass over the LUT DAG; path endpoints are
// register D/enable pins and output ports.
class TimingAnalyzer {
 public:
  static StatusOr<TimingReport> Analyze(const MappedNetlist& mapped,
                                        const Device& device);
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_TIMING_H_
