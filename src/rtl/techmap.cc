#include "rtl/techmap.h"

#include <algorithm>
#include <unordered_map>

namespace cfgtag::rtl {

namespace {

// Operation of an internal decomposed node. All gates are <= 2 inputs here.
enum class MOp : uint8_t { kSrc, kAnd2, kOr2, kNot, kXor2, kBuf };

struct MNode {
  MOp op = MOp::kSrc;
  uint32_t fanin[2] = {0, 0};
  uint8_t arity = 0;
  // Total uses: as another mnode's fan-in, a register D/enable pin, or an
  // output port.
  uint32_t fanout = 0;
  // Netlist node this mnode corresponds to (kInvalidNode for interior
  // decomposition nodes).
  NodeId orig = kInvalidNode;
};

}  // namespace

std::vector<AreaBucket> BreakdownByScope(const MappedNetlist& mapped) {
  std::vector<AreaBucket> buckets;
  auto bucket_for = [&](const std::string& scope) -> AreaBucket& {
    for (AreaBucket& b : buckets) {
      if (b.scope == scope) return b;
    }
    buckets.push_back(AreaBucket{scope, 0, 0});
    return buckets.back();
  };
  for (const MappedNetlist::Net& net : mapped.nets) {
    if (net.kind == MappedNetlist::NetKind::kLut) {
      bucket_for(net.scope).luts++;
    } else if (net.kind == MappedNetlist::NetKind::kReg) {
      bucket_for(net.scope).ffs++;
    }
  }
  return buckets;
}

MappedNetlist::NetId MappedNetlist::MaxFanoutNet() const {
  NetId best = kNoNet;
  uint32_t best_fanout = 0;
  for (NetId i = 0; i < nets.size(); ++i) {
    if (nets[i].fanout > best_fanout) {
      best_fanout = nets[i].fanout;
      best = i;
    }
  }
  return best;
}

TechMapper::TechMapper(int lut_inputs) : lut_inputs_(lut_inputs) {}

StatusOr<MappedNetlist> TechMapper::Map(const Netlist& netlist) const {
  CFGTAG_RETURN_IF_ERROR(netlist.Validate());
  if (lut_inputs_ < 2) {
    return InvalidArgumentError("LUT size must be >= 2");
  }
  const size_t k = static_cast<size_t>(lut_inputs_);

  // ---- Phase 1: decompose into <=2-input gates -----------------------
  std::vector<MNode> m;
  m.reserve(netlist.NumNodes() * 2);
  // Root mnode of every netlist node.
  std::vector<uint32_t> mroot(netlist.NumNodes(), 0);

  auto add_src = [&](NodeId orig) {
    MNode n;
    n.op = MOp::kSrc;
    n.orig = orig;
    m.push_back(n);
    return static_cast<uint32_t>(m.size() - 1);
  };
  auto add_gate = [&](MOp op, uint32_t a, uint32_t b, uint8_t arity,
                      NodeId orig) {
    MNode n;
    n.op = op;
    n.fanin[0] = a;
    n.fanin[1] = b;
    n.arity = arity;
    n.orig = orig;
    m.push_back(n);
    return static_cast<uint32_t>(m.size() - 1);
  };
  // Balanced tree reduction of a wide AND/OR. Every tree node carries the
  // original gate's NodeId so names and area-attribution scopes survive
  // the decomposition.
  auto add_tree = [&](MOp op, std::vector<uint32_t> ins, NodeId orig) {
    while (ins.size() > 1) {
      std::vector<uint32_t> next;
      next.reserve((ins.size() + 1) / 2);
      for (size_t i = 0; i + 1 < ins.size(); i += 2) {
        next.push_back(add_gate(op, ins[i], ins[i + 1], 2, orig));
      }
      if (ins.size() % 2 == 1) next.push_back(ins.back());
      ins = std::move(next);
    }
    return ins[0];
  };

  for (NodeId id = 0; id < netlist.NumNodes(); ++id) {
    const Node& n = netlist.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kReg:
        mroot[id] = add_src(id);
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr: {
        std::vector<uint32_t> ins;
        ins.reserve(n.fanin.size());
        for (NodeId f : n.fanin) ins.push_back(mroot[f]);
        mroot[id] = add_tree(
            n.kind == NodeKind::kAnd ? MOp::kAnd2 : MOp::kOr2, std::move(ins),
            id);
        break;
      }
      case NodeKind::kNot:
        mroot[id] = add_gate(MOp::kNot, mroot[n.fanin[0]], 0, 1, id);
        break;
      case NodeKind::kXor:
        mroot[id] =
            add_gate(MOp::kXor2, mroot[n.fanin[0]], mroot[n.fanin[1]], 2, id);
        break;
      case NodeKind::kBuf:
        mroot[id] = add_gate(MOp::kBuf, mroot[n.fanin[0]], 0, 1, id);
        break;
    }
  }

  // ---- Phase 2: fan-out counts ---------------------------------------
  for (const MNode& n : m) {
    for (uint8_t i = 0; i < n.arity; ++i) m[n.fanin[i]].fanout++;
  }
  for (NodeId id = 0; id < netlist.NumNodes(); ++id) {
    const Node& n = netlist.node(id);
    if (n.kind != NodeKind::kReg) continue;
    m[mroot[n.fanin[0]]].fanout++;
    if (n.enable != kInvalidNode) m[mroot[n.enable]].fanout++;
  }
  for (const OutputPort& out : netlist.outputs()) m[mroot[out.node]].fanout++;

  // ---- Phase 3: greedy cut growing ------------------------------------
  // cut[i]: the LUT leaf set if mnode i becomes a LUT root. Sources have
  // themselves as their only leaf.
  std::vector<std::vector<uint32_t>> cut(m.size());
  for (uint32_t i = 0; i < m.size(); ++i) {
    MNode& n = m[i];
    if (n.op == MOp::kSrc) {
      cut[i] = {i};
      continue;
    }
    std::vector<uint32_t> leaves;
    for (uint8_t j = 0; j < n.arity; ++j) leaves.push_back(n.fanin[j]);
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
    // Repeatedly expand a single-fan-out gate leaf while the cut fits in k.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t li = 0; li < leaves.size(); ++li) {
        const uint32_t leaf = leaves[li];
        if (m[leaf].op == MOp::kSrc || m[leaf].fanout != 1) continue;
        std::vector<uint32_t> merged;
        merged.reserve(leaves.size() + cut[leaf].size());
        for (size_t lj = 0; lj < leaves.size(); ++lj) {
          if (lj != li) merged.push_back(leaves[lj]);
        }
        merged.insert(merged.end(), cut[leaf].begin(), cut[leaf].end());
        std::sort(merged.begin(), merged.end());
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        if (merged.size() <= k) {
          leaves = std::move(merged);
          changed = true;
          break;
        }
      }
    }
    cut[i] = std::move(leaves);
  }

  // ---- Phase 4: cover extraction --------------------------------------
  // Walk back from visible pins (register D/enable, outputs); every gate
  // reached becomes a LUT whose inputs are its cut leaves.
  MappedNetlist out;
  out.lut_inputs = lut_inputs_;

  std::vector<MappedNetlist::NetId> net_of(m.size(), MappedNetlist::kNoNet);
  std::vector<uint32_t> worklist;

  auto require_net = [&](uint32_t mi) {
    if (net_of[mi] != MappedNetlist::kNoNet) return net_of[mi];
    MappedNetlist::Net net;
    net.orig = m[mi].orig;
    if (m[mi].op == MOp::kSrc) {
      const Node& src = netlist.node(m[mi].orig);
      switch (src.kind) {
        case NodeKind::kConst0:
        case NodeKind::kConst1:
          net.kind = MappedNetlist::NetKind::kConst;
          break;
        case NodeKind::kInput:
          net.kind = MappedNetlist::NetKind::kInput;
          break;
        case NodeKind::kReg:
          net.kind = MappedNetlist::NetKind::kReg;
          break;
        default:
          break;
      }
      net.name = src.name;
    } else {
      net.kind = MappedNetlist::NetKind::kLut;
      if (m[mi].orig != kInvalidNode) net.name = netlist.node(m[mi].orig).name;
      worklist.push_back(mi);
    }
    if (net.orig != kInvalidNode) net.scope = netlist.NodeScope(net.orig);
    out.nets.push_back(std::move(net));
    net_of[mi] = static_cast<MappedNetlist::NetId>(out.nets.size() - 1);
    return net_of[mi];
  };

  // Seed from registers and outputs.
  for (NodeId id = 0; id < netlist.NumNodes(); ++id) {
    const Node& n = netlist.node(id);
    if (n.kind != NodeKind::kReg) continue;
    MappedNetlist::NetId reg_net = require_net(mroot[id]);
    MappedNetlist::RegPins pins;
    pins.d = require_net(mroot[n.fanin[0]]);
    if (n.enable != kInvalidNode) pins.enable = require_net(mroot[n.enable]);
    out.reg_nets.push_back(reg_net);
    out.reg_pins.push_back(pins);
  }
  for (const OutputPort& port : netlist.outputs()) {
    MappedNetlist::OutputPin pin;
    pin.net = require_net(mroot[port.node]);
    pin.name = port.name;
    out.outputs.push_back(std::move(pin));
  }
  // Also materialize all primary inputs so unused ones still appear.
  for (NodeId id : netlist.inputs()) {
    out.input_nets.push_back(require_net(mroot[id]));
  }

  // Expand LUT cones. require_net() may reallocate out.nets, so resolve the
  // leaf net id before touching the parent element.
  while (!worklist.empty()) {
    const uint32_t mi = worklist.back();
    worklist.pop_back();
    const MappedNetlist::NetId self = net_of[mi];
    for (uint32_t leaf : cut[mi]) {
      const MappedNetlist::NetId in = require_net(leaf);
      out.nets[self].inputs.push_back(in);
    }
  }

  // ---- Phase 5: sink counting (fan-out in the mapped design) ----------
  for (const MappedNetlist::Net& net : out.nets) {
    for (MappedNetlist::NetId in : net.inputs) out.nets[in].fanout++;
  }
  for (const MappedNetlist::RegPins& pins : out.reg_pins) {
    out.nets[pins.d].fanout++;
    if (pins.enable != MappedNetlist::kNoNet) out.nets[pins.enable].fanout++;
  }
  for (const MappedNetlist::OutputPin& pin : out.outputs) {
    out.nets[pin.net].fanout++;
  }

  return out;
}

}  // namespace cfgtag::rtl
