#ifndef CFGTAG_RTL_SERIALIZE_H_
#define CFGTAG_RTL_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// Text serialization of a netlist — a stable on-disk artifact for
// generated designs (the moral equivalent of an EDIF/structural-netlist
// dump in a vendor flow). One line per node, node ids explicit, so the
// round trip is exact: ids, names, scopes, register init/enable and port
// order all survive.
//
//   cfgtag-netlist-v1
//   scope 1 "decoder"
//   2 i "d0"
//   5 a 2 3 4 s1 "maybe a name"
//   9 r d=5 en=7 init=1 s1 "state"
//   out 9 "match_t0"
//
// Node kinds: i=input a=and o=or n=not x=xor b=buf r=reg. Nodes 0 and 1
// are the implicit constants. Names are C-escaped and double-quoted.
std::string SerializeNetlist(const Netlist& netlist);

// Parses the format above. Fails with kInvalidArgument on malformed input;
// the result always passes Netlist::Validate().
StatusOr<Netlist> ParseNetlist(const std::string& text);

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_SERIALIZE_H_
