#include "rtl/vcd_writer.h"

namespace cfgtag::rtl {

namespace {

// VCD identifier codes: printable ASCII 33..126, little-endian digits.
std::string CodeFor(size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream* os, const Netlist* netlist)
    : os_(os), netlist_(netlist) {}

void VcdWriter::AddSignal(NodeId node, std::string name) {
  Signal s;
  s.node = node;
  s.name = std::move(name);
  s.code = CodeFor(signals_.size());
  signals_.push_back(std::move(s));
}

void VcdWriter::WriteHeader() {
  *os_ << "$timescale 1ns $end\n$scope module cfgtag $end\n";
  for (const Signal& s : signals_) {
    *os_ << "$var wire 1 " << s.code << " " << s.name << " $end\n";
  }
  *os_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::Sample(const Simulator& sim) {
  if (!header_written_) WriteHeader();
  bool stamped = false;
  for (Signal& s : signals_) {
    const int v = sim.Get(s.node) ? 1 : 0;
    if (v == s.last) continue;
    if (!stamped) {
      *os_ << "#" << time_ << "\n";
      stamped = true;
    }
    *os_ << v << s.code << "\n";
    s.last = v;
  }
  ++time_;
}

}  // namespace cfgtag::rtl
