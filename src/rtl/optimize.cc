#include "rtl/optimize.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "rtl/simulator.h"

namespace cfgtag::rtl {

namespace {

// Structural-hash key for a gate: kind plus (commutative-sorted) fan-ins.
struct GateKey {
  NodeKind kind;
  std::vector<NodeId> fanin;

  bool operator==(const GateKey& other) const {
    return kind == other.kind && fanin == other.fanin;
  }
};

struct GateKeyHash {
  size_t operator()(const GateKey& k) const {
    size_t h = static_cast<size_t>(k.kind) * 1099511628211ULL;
    for (NodeId f : k.fanin) {
      h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

StatusOr<Netlist> Optimize(const Netlist& input, OptimizeStats* stats) {
  CFGTAG_RETURN_IF_ERROR(input.Validate());
  OptimizeStats local;
  const Netlist::Stats before = input.ComputeStats();
  local.gates_before = before.num_gates;
  local.regs_before = before.num_regs;

  // ---- Reachability from the output ports ----------------------------
  // Registers are kept only if some output transitively needs them.
  std::vector<uint8_t> live(input.NumNodes(), 0);
  std::vector<NodeId> work;
  auto mark = [&](NodeId id) {
    if (id != kInvalidNode && !live[id]) {
      live[id] = 1;
      work.push_back(id);
    }
  };
  for (const OutputPort& out : input.outputs()) mark(out.node);
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    const Node& n = input.node(id);
    for (NodeId f : n.fanin) mark(f);
    if (n.kind == NodeKind::kReg) mark(n.enable);
  }

  // ---- Rebuild -------------------------------------------------------
  Netlist out;
  std::vector<NodeId> map(input.NumNodes(), kInvalidNode);
  map[input.Const0()] = out.Const0();
  map[input.Const1()] = out.Const1();

  // Pass 1: live registers become placeholders (their D/enable may
  // reference nodes that appear later).
  for (NodeId id = 0; id < input.NumNodes(); ++id) {
    const Node& n = input.node(id);
    if (n.kind != NodeKind::kReg || !live[id]) continue;
    out.SetScope(input.NodeScope(id));
    map[id] = out.RegPlaceholder(kInvalidNode, n.init, n.name);
  }

  // Pass 2: inputs (all of them, to keep the port list stable) and live
  // combinational logic, with constant folding (inside the builder) and
  // structural hashing.
  std::unordered_map<GateKey, NodeId, GateKeyHash> cse;
  for (NodeId id = 0; id < input.NumNodes(); ++id) {
    const Node& n = input.node(id);
    if (n.kind == NodeKind::kInput) {
      out.SetScope(input.NodeScope(id));
      map[id] = out.AddInput(n.name);
      continue;
    }
    if (!live[id] || map[id] != kInvalidNode) continue;
    if (n.kind == NodeKind::kReg) continue;  // done in pass 1

    out.SetScope(input.NodeScope(id));
    std::vector<NodeId> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fanin.push_back(map[f]);

    NodeId built = kInvalidNode;
    switch (n.kind) {
      case NodeKind::kBuf:
        built = fanin[0];  // sweep
        break;
      case NodeKind::kNot: {
        GateKey key{NodeKind::kNot, fanin};
        auto it = cse.find(key);
        if (it != cse.end()) {
          built = it->second;
          local.cse_hits++;
        } else {
          built = out.Not(fanin[0]);
          cse.emplace(std::move(key), built);
        }
        break;
      }
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kXor: {
        std::sort(fanin.begin(), fanin.end());
        // Idempotence for and/or: drop duplicate inputs.
        if (n.kind != NodeKind::kXor) {
          fanin.erase(std::unique(fanin.begin(), fanin.end()), fanin.end());
        }
        GateKey key{n.kind, fanin};
        auto it = cse.find(key);
        if (it != cse.end()) {
          built = it->second;
          local.cse_hits++;
        } else {
          built = n.kind == NodeKind::kAnd ? out.And(fanin)
                  : n.kind == NodeKind::kOr
                      ? out.Or(fanin)
                      : out.Xor(fanin[0], fanin[1]);
          cse.emplace(std::move(key), built);
        }
        break;
      }
      default:
        return InternalError("unexpected node kind in optimize");
    }
    // Preserve a name if the merged target has none (never rename the
    // constant drivers).
    if (!n.name.empty() && built > out.Const1() &&
        out.node(built).name.empty()) {
      out.SetName(built, n.name);
    }
    map[id] = built;
  }

  // Pass 3: patch register pins.
  for (NodeId id = 0; id < input.NumNodes(); ++id) {
    const Node& n = input.node(id);
    if (n.kind != NodeKind::kReg || !live[id]) continue;
    out.SetRegD(map[id], map[n.fanin[0]]);
    if (n.enable != kInvalidNode) out.SetRegEnable(map[id], map[n.enable]);
  }

  // Pass 4: outputs.
  for (const OutputPort& port : input.outputs()) {
    out.MarkOutput(map[port.node], port.name);
  }
  out.SetScope("");

  CFGTAG_RETURN_IF_ERROR(out.Validate());
  const Netlist::Stats after = out.ComputeStats();
  local.gates_after = after.num_gates;
  local.regs_after = after.num_regs;
  if (stats != nullptr) *stats = local;
  return out;
}

Status CheckEquivalent(const Netlist& a, const Netlist& b, int vectors,
                       int cycles, uint64_t seed) {
  // Match ports by name.
  std::vector<std::pair<NodeId, NodeId>> in_pairs;
  for (NodeId ia : a.inputs()) {
    const NodeId ib = b.FindByName(a.node(ia).name);
    if (ib == kInvalidNode || b.node(ib).kind != NodeKind::kInput) {
      return InvalidArgumentError("input '" + a.node(ia).name +
                                  "' missing in second netlist");
    }
    in_pairs.emplace_back(ia, ib);
  }
  std::vector<std::pair<const OutputPort*, const OutputPort*>> out_pairs;
  for (const OutputPort& oa : a.outputs()) {
    const OutputPort* match = nullptr;
    for (const OutputPort& ob : b.outputs()) {
      if (ob.name == oa.name) match = &ob;
    }
    if (match == nullptr) {
      return InvalidArgumentError("output '" + oa.name +
                                  "' missing in second netlist");
    }
    out_pairs.emplace_back(&oa, match);
  }

  CFGTAG_ASSIGN_OR_RETURN(auto sim_a, Simulator::Create(&a));
  CFGTAG_ASSIGN_OR_RETURN(auto sim_b, Simulator::Create(&b));
  Rng rng(seed);
  for (int v = 0; v < vectors; ++v) {
    sim_a.Reset();
    sim_b.Reset();
    for (int c = 0; c < cycles; ++c) {
      for (const auto& [ia, ib] : in_pairs) {
        const bool bit = rng.NextBool();
        sim_a.SetInput(ia, bit);
        sim_b.SetInput(ib, bit);
      }
      sim_a.Step();
      sim_b.Step();
      sim_a.EvalComb();
      sim_b.EvalComb();
      for (const auto& [oa, ob] : out_pairs) {
        if (sim_a.Get(oa->node) != sim_b.Get(ob->node)) {
          return InternalError("output '" + oa->name +
                               "' diverges at vector " + std::to_string(v) +
                               " cycle " + std::to_string(c));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace cfgtag::rtl
