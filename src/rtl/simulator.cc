#include "rtl/simulator.h"

#include <algorithm>
#include <cstdio>

namespace cfgtag::rtl {

StatusOr<Simulator> Simulator::Create(const Netlist* netlist) {
  CFGTAG_RETURN_IF_ERROR(netlist->Validate());
  return Simulator(netlist);
}

Simulator::Simulator(const Netlist* netlist)
    : netlist_(netlist), values_(netlist->NumNodes(), 0) {
  for (NodeId i = 0; i < netlist_->NumNodes(); ++i) {
    if (netlist_->node(i).kind == NodeKind::kReg) regs_.push_back(i);
  }
  next_reg_values_.resize(regs_.size(), 0);
  reg_toggle_counts_.assign(regs_.size(), 0);
  Reset();
}

void Simulator::Reset() {
  std::fill(values_.begin(), values_.end(), 0);
  values_[netlist_->Const1()] = 1;
  for (NodeId r : regs_) values_[r] = netlist_->node(r).init ? 1 : 0;
  cycle_count_ = 0;
}

void Simulator::SetInput(NodeId input, bool value) {
  values_[input] = value ? 1 : 0;
}

void Simulator::EvalComb() {
  const std::vector<Node>& nodes = netlist_->nodes();
  for (NodeId i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kReg:
        break;  // sources: value already present
      case NodeKind::kAnd: {
        uint8_t v = 1;
        for (NodeId in : n.fanin) v &= values_[in];
        values_[i] = v;
        break;
      }
      case NodeKind::kOr: {
        uint8_t v = 0;
        for (NodeId in : n.fanin) v |= values_[in];
        values_[i] = v;
        break;
      }
      case NodeKind::kNot:
        values_[i] = values_[n.fanin[0]] ^ 1;
        break;
      case NodeKind::kXor:
        values_[i] = values_[n.fanin[0]] ^ values_[n.fanin[1]];
        break;
      case NodeKind::kBuf:
        values_[i] = values_[n.fanin[0]];
        break;
    }
  }
}

void Simulator::Step() {
  EvalComb();
  // Sample phase: compute every register's next value from pre-edge nets.
  for (size_t k = 0; k < regs_.size(); ++k) {
    const Node& r = netlist_->node(regs_[k]);
    const bool enabled = r.enable == kInvalidNode || values_[r.enable] != 0;
    next_reg_values_[k] = enabled ? values_[r.fanin[0]] : values_[regs_[k]];
  }
  if (activity_enabled_) {
    ++activity_.cycles;
    for (size_t k = 0; k < regs_.size(); ++k) {
      const Node& r = netlist_->node(regs_[k]);
      if (r.enable != kInvalidNode) {
        if (values_[r.enable] != 0) {
          ++activity_.enabled_samples;
        } else {
          ++activity_.gated_samples;
        }
      }
      if (next_reg_values_[k] != values_[regs_[k]]) {
        ++activity_.reg_toggles;
        ++reg_toggle_counts_[k];
      }
    }
  }
  // Commit phase.
  for (size_t k = 0; k < regs_.size(); ++k) {
    values_[regs_[k]] = next_reg_values_[k];
  }
  const uint64_t cycle = cycle_count_++;
  for (const Probe& probe : probes_) {
    probe.callback(cycle, values_[probe.node] != 0);
  }
}

void Simulator::AddProbe(NodeId node, ProbeCallback callback) {
  probes_.push_back(Probe{node, std::move(callback)});
}

void Simulator::EnableActivityStats(bool enabled) {
  activity_enabled_ = enabled;
  activity_ = ActivityStats();
  reg_toggle_counts_.assign(regs_.size(), 0);
}

ToggleRateReport Simulator::BuildToggleReport(size_t top_n) const {
  ToggleRateReport report;
  report.cycles = activity_.cycles;
  report.total_toggles = activity_.reg_toggles;
  if (activity_.cycles > 0 && !regs_.empty()) {
    report.avg_rate = static_cast<double>(activity_.reg_toggles) /
                      (static_cast<double>(activity_.cycles) *
                       static_cast<double>(regs_.size()));
  }
  std::vector<size_t> order(regs_.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return reg_toggle_counts_[a] > reg_toggle_counts_[b];
  });
  const size_t n = std::min(top_n, order.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t k = order[i];
    if (reg_toggle_counts_[k] == 0) break;  // order is by count, descending
    ToggleRateReport::Entry entry;
    entry.node = regs_[k];
    const Node& r = netlist_->node(regs_[k]);
    entry.name = !r.name.empty()
                     ? r.name
                     : netlist_->NodeScope(regs_[k]) + ".reg" +
                           std::to_string(regs_[k]);
    entry.toggles = reg_toggle_counts_[k];
    if (activity_.cycles > 0) {
      entry.rate = static_cast<double>(reg_toggle_counts_[k]) /
                   static_cast<double>(activity_.cycles);
    }
    report.hottest.push_back(std::move(entry));
  }
  return report;
}

std::string ToggleRateReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "activity: %llu cycles, %llu register toggles, "
                "avg toggle rate %.4f\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(total_toggles), avg_rate);
  std::string out = buf;
  for (const Entry& e : hottest) {
    std::snprintf(buf, sizeof(buf), "  %-32s %10llu toggles  rate %.4f\n",
                  e.name.c_str(),
                  static_cast<unsigned long long>(e.toggles), e.rate);
    out += buf;
  }
  return out;
}

}  // namespace cfgtag::rtl
