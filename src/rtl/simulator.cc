#include "rtl/simulator.h"

namespace cfgtag::rtl {

StatusOr<Simulator> Simulator::Create(const Netlist* netlist) {
  CFGTAG_RETURN_IF_ERROR(netlist->Validate());
  return Simulator(netlist);
}

Simulator::Simulator(const Netlist* netlist)
    : netlist_(netlist), values_(netlist->NumNodes(), 0) {
  for (NodeId i = 0; i < netlist_->NumNodes(); ++i) {
    if (netlist_->node(i).kind == NodeKind::kReg) regs_.push_back(i);
  }
  next_reg_values_.resize(regs_.size(), 0);
  Reset();
}

void Simulator::Reset() {
  std::fill(values_.begin(), values_.end(), 0);
  values_[netlist_->Const1()] = 1;
  for (NodeId r : regs_) values_[r] = netlist_->node(r).init ? 1 : 0;
  cycle_count_ = 0;
}

void Simulator::SetInput(NodeId input, bool value) {
  values_[input] = value ? 1 : 0;
}

void Simulator::EvalComb() {
  const std::vector<Node>& nodes = netlist_->nodes();
  for (NodeId i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kReg:
        break;  // sources: value already present
      case NodeKind::kAnd: {
        uint8_t v = 1;
        for (NodeId in : n.fanin) v &= values_[in];
        values_[i] = v;
        break;
      }
      case NodeKind::kOr: {
        uint8_t v = 0;
        for (NodeId in : n.fanin) v |= values_[in];
        values_[i] = v;
        break;
      }
      case NodeKind::kNot:
        values_[i] = values_[n.fanin[0]] ^ 1;
        break;
      case NodeKind::kXor:
        values_[i] = values_[n.fanin[0]] ^ values_[n.fanin[1]];
        break;
      case NodeKind::kBuf:
        values_[i] = values_[n.fanin[0]];
        break;
    }
  }
}

void Simulator::Step() {
  EvalComb();
  // Sample phase: compute every register's next value from pre-edge nets.
  for (size_t k = 0; k < regs_.size(); ++k) {
    const Node& r = netlist_->node(regs_[k]);
    const bool enabled = r.enable == kInvalidNode || values_[r.enable] != 0;
    next_reg_values_[k] = enabled ? values_[r.fanin[0]] : values_[regs_[k]];
  }
  // Commit phase.
  for (size_t k = 0; k < regs_.size(); ++k) {
    values_[regs_[k]] = next_reg_values_[k];
  }
  ++cycle_count_;
}

}  // namespace cfgtag::rtl
