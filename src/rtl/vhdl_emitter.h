#ifndef CFGTAG_RTL_VHDL_EMITTER_H_
#define CFGTAG_RTL_VHDL_EMITTER_H_

#include <string>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// Emits a synthesizable structural VHDL-93 architecture from a netlist —
// the artifact the paper's automatic code generator produced for the Xilinx
// tool flow. Ports are the netlist's inputs/outputs plus `clk` and a
// synchronous `rst` that restores every register's init value.
class VhdlEmitter {
 public:
  // `entity_name` must be a valid VHDL identifier.
  static StatusOr<std::string> Emit(const Netlist& netlist,
                                    const std::string& entity_name);
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_VHDL_EMITTER_H_
