#ifndef CFGTAG_RTL_SIMULATOR_H_
#define CFGTAG_RTL_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// Cycle-accurate two-phase simulator for a Netlist.
//
// Each Step() models one positive clock edge:
//   1. combinational values are settled from the current register/input
//      values (the netlist is levelized once at construction);
//   2. every register samples its D (gated by its clock-enable) and commits.
//
// Gates only reference earlier node ids by construction, so combinational
// evaluation is a single in-order sweep; registers are the only legal
// feedback points, exactly like a single-clock synchronous circuit.
class Simulator {
 public:
  // The netlist must outlive the simulator.
  static StatusOr<Simulator> Create(const Netlist* netlist);

  // Resets all registers to their init values and clears inputs.
  void Reset();

  void SetInput(NodeId input, bool value);

  // Settles combinational logic for the current inputs/state. Get() is valid
  // afterwards. Step() implies an EvalComb() of the pre-edge state.
  void EvalComb();

  // One clock edge: EvalComb, then clock all registers.
  void Step();

  // Value of a node. After Step(), register nodes hold their *post-edge*
  // values while combinational nodes still hold pre-edge values; call
  // EvalComb() first when probing combinational nets between edges. The
  // generated taggers register every output, so reading registered outputs
  // right after Step() observes the cycle that consumed the last input.
  bool Get(NodeId node) const { return values_[node] != 0; }

  uint64_t cycle_count() const { return cycle_count_; }

 private:
  explicit Simulator(const Netlist* netlist);

  const Netlist* netlist_;
  // Current value of every node (combinational view).
  std::vector<uint8_t> values_;
  // Registers in the netlist, precomputed for the commit phase.
  std::vector<NodeId> regs_;
  std::vector<uint8_t> next_reg_values_;
  uint64_t cycle_count_ = 0;
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_SIMULATOR_H_
