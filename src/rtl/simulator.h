#ifndef CFGTAG_RTL_SIMULATOR_H_
#define CFGTAG_RTL_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::rtl {

// Invoked once per Step() for a probed node, after the clock edge commits.
// For register nodes the value is the post-edge value; for combinational
// nodes it is the value that fed the edge (the pre-edge settle).
using ProbeCallback = std::function<void(uint64_t cycle, bool value)>;

// Aggregate switching activity over a simulation run — the software stand-in
// for an FPGA vendor's power/activity estimate. Gathered only while
// EnableActivityStats(true) is in force.
struct ActivityStats {
  uint64_t cycles = 0;          // Step() calls observed
  uint64_t reg_toggles = 0;     // register bits that changed across an edge
  uint64_t enabled_samples = 0; // reg-cycles whose clock-enable was high
  uint64_t gated_samples = 0;   // reg-cycles held by a low clock-enable
};

// Per-register switching summary derived from ActivityStats.
struct ToggleRateReport {
  struct Entry {
    NodeId node = kInvalidNode;
    std::string name;   // register name, or scope-qualified placeholder
    uint64_t toggles = 0;
    double rate = 0.0;  // toggles / cycles
  };
  uint64_t cycles = 0;
  uint64_t total_toggles = 0;
  double avg_rate = 0.0;          // mean per-register toggle rate
  std::vector<Entry> hottest;     // top-N registers by toggle count

  std::string ToString() const;
};

// Cycle-accurate two-phase simulator for a Netlist.
//
// Each Step() models one positive clock edge:
//   1. combinational values are settled from the current register/input
//      values (the netlist is levelized once at construction);
//   2. every register samples its D (gated by its clock-enable) and commits.
//
// Gates only reference earlier node ids by construction, so combinational
// evaluation is a single in-order sweep; registers are the only legal
// feedback points, exactly like a single-clock synchronous circuit.
class Simulator {
 public:
  // The netlist must outlive the simulator.
  static StatusOr<Simulator> Create(const Netlist* netlist);

  // Resets all registers to their init values and clears inputs.
  void Reset();

  void SetInput(NodeId input, bool value);

  // Settles combinational logic for the current inputs/state. Get() is valid
  // afterwards. Step() implies an EvalComb() of the pre-edge state.
  void EvalComb();

  // One clock edge: EvalComb, then clock all registers.
  void Step();

  // Value of a node. After Step(), register nodes hold their *post-edge*
  // values while combinational nodes still hold pre-edge values; call
  // EvalComb() first when probing combinational nets between edges. The
  // generated taggers register every output, so reading registered outputs
  // right after Step() observes the cycle that consumed the last input.
  bool Get(NodeId node) const { return values_[node] != 0; }

  uint64_t cycle_count() const { return cycle_count_; }

  // --- Probes & activity ---------------------------------------------------

  // Watches `node`: `callback` fires exactly once per Step(), after the
  // edge commits, with the cycle index (0-based) and the node's value.
  // Probes persist across Reset().
  void AddProbe(NodeId node, ProbeCallback callback);

  // Turns per-cycle activity accounting on/off. Off by default — counting
  // touches every register each Step(), so it costs a measurable fraction
  // of simulation speed. Enabling resets the running stats.
  void EnableActivityStats(bool enabled);
  const ActivityStats& activity() const { return activity_; }

  // Per-register toggle summary of the activity window; `top_n` bounds the
  // `hottest` list. Meaningful only after running with activity enabled.
  ToggleRateReport BuildToggleReport(size_t top_n = 10) const;

 private:
  explicit Simulator(const Netlist* netlist);

  struct Probe {
    NodeId node;
    ProbeCallback callback;
  };

  const Netlist* netlist_;
  // Current value of every node (combinational view).
  std::vector<uint8_t> values_;
  // Registers in the netlist, precomputed for the commit phase.
  std::vector<NodeId> regs_;
  std::vector<uint8_t> next_reg_values_;
  uint64_t cycle_count_ = 0;
  std::vector<Probe> probes_;
  bool activity_enabled_ = false;
  ActivityStats activity_;
  std::vector<uint64_t> reg_toggle_counts_;  // parallel to regs_
};

}  // namespace cfgtag::rtl

#endif  // CFGTAG_RTL_SIMULATOR_H_
