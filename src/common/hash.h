#ifndef CFGTAG_COMMON_HASH_H_
#define CFGTAG_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

namespace cfgtag {

// The 64-bit mix primitive shared by the lazy-DFA configuration hash, the
// canonical grammar hash, and the artifact checksum. Changing it is a
// compatibility break for saved artifacts (both the checksum and the baked
// DFA state hashes are stored) — bump kArtifactFormatVersion if you must.
inline uint64_t HashMix64(uint64_t h, uint64_t v) {
  v *= 0x9e3779b97f4a7c15ULL;
  v ^= v >> 29;
  h = (h ^ v) * 0xff51afd7ed558ccdULL;
  return h ^ (h >> 32);
}

// Streams arbitrary bytes through HashMix64 one 64-bit word at a time
// (final partial word zero-padded, length folded in at the end).
inline uint64_t HashBytes64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = HashMix64(h, w);
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = HashMix64(h, w);
  }
  return HashMix64(h, static_cast<uint64_t>(size));
}

}  // namespace cfgtag

#endif  // CFGTAG_COMMON_HASH_H_
