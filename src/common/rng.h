#ifndef CFGTAG_COMMON_RNG_H_
#define CFGTAG_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cfgtag {

// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
// All workload generators in the repository draw from this so that every
// experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  // Uniform double in [0, 1).
  double NextDouble();

  // Picks a uniformly random element index for a container of `size`
  // elements. Requires size > 0.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  // Random string of length `len` drawn from `alphabet`.
  std::string NextString(size_t len, const std::string& alphabet);

 private:
  uint64_t s_[4];
};

}  // namespace cfgtag

#endif  // CFGTAG_COMMON_RNG_H_
