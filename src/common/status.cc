#include "common/status.h"

namespace cfgtag {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok() || context.empty()) return *this;
  std::string message(context);
  if (!message_.empty()) {
    message += ": ";
    message += message_;
  }
  return Status(code_, std::move(message));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace cfgtag
