#ifndef CFGTAG_COMMON_STATUS_H_
#define CFGTAG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cfgtag {

// Error categories used across the library. The library reports failures
// through Status/StatusOr rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the success path (no message
// allocation). Modeled after absl::Status but self-contained.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  // Returns this status with `context` prefixed onto the message
  // ("context: message"), preserving the code. Pipelines use it to name
  // the failing stage — e.g. a techmap error surfacing from Compile reads
  // "INTERNAL: techmap: ...". No-op on OK statuses.
  Status WithContext(std::string_view context) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status ResourceExhaustedError(std::string message);

// Holds either a value of type T or an error Status. `value()` must only be
// called when `ok()`.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return MakeThing();` and `return SomeError();` from the same function.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the current function.
#define CFGTAG_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::cfgtag::Status cfgtag_status_ = (expr);         \
    if (!cfgtag_status_.ok()) return cfgtag_status_;  \
  } while (0)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// assigns the value to `lhs`. `lhs` may be a declaration.
#define CFGTAG_ASSIGN_OR_RETURN(lhs, expr)                   \
  CFGTAG_ASSIGN_OR_RETURN_IMPL_(                             \
      CFGTAG_STATUS_CONCAT_(cfgtag_statusor_, __LINE__), lhs, expr)

#define CFGTAG_STATUS_CONCAT_INNER_(a, b) a##b
#define CFGTAG_STATUS_CONCAT_(a, b) CFGTAG_STATUS_CONCAT_INNER_(a, b)
#define CFGTAG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace cfgtag

#endif  // CFGTAG_COMMON_STATUS_H_
