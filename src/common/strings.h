#ifndef CFGTAG_COMMON_STRINGS_H_
#define CFGTAG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cfgtag {

// Splits `s` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Renders a byte as a readable token for error messages: printable
// characters as 'c', everything else as 0xHH.
std::string ByteName(unsigned char c);

// Escapes non-printable characters and quotes for debug output.
std::string CEscape(std::string_view s);

}  // namespace cfgtag

#endif  // CFGTAG_COMMON_STRINGS_H_
