#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace cfgtag {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ByteName(unsigned char c) {
  if (std::isprint(c)) {
    std::string out = "'";
    out.push_back(static_cast<char>(c));
    out += "'";
    return out;
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02X", c);
  return buf;
}

std::string CEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default:
        if (std::isprint(c)) {
          out.push_back(ch);
        } else {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        }
    }
  }
  return out;
}

}  // namespace cfgtag
