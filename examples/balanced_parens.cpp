// The paper's first worked example (Fig. 1/2): "0" in balanced
// parentheses. Demonstrates the central design decision of §3.1 — the
// push-down automaton is collapsed into a finite automaton, so the
// hardware tags a *superset* of the grammar's language: every balanced
// string tags exactly like the true parser, and unbalanced strings are
// still tagged token-by-token instead of being rejected.
//
// Build & run:  ./build/examples/balanced_parens

#include <cstdio>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "tagger/ll_parser.h"

int main() {
  using namespace cfgtag;

  // Fig. 1: E -> ( E ) | 0
  const char* text = R"grm(
%%
e: "(" e ")" | "0";
%%
)grm";
  auto grammar = grammar::ParseGrammar(text);
  grammar::Grammar for_parser = grammar->Clone();
  auto parser = tagger::PredictiveParser::Create(&for_parser, {});
  auto tagger = core::CompiledTagger::Compile(std::move(grammar).value());
  if (!tagger.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 tagger.status().ToString().c_str());
    return 1;
  }

  const std::vector<const char*> inputs = {
      "0", "(0)", "((0))", "(((0)))",  // balanced: in the language
      "((0)",                          // missing ')': rejected by the PDA
      "(0))",                          // extra ')': rejected by the PDA
      ")0(",                           // nonsense
  };

  std::printf("%-12s | %-12s | %-10s | %s\n", "input", "true parser",
              "FSA tags", "FSA tag stream");
  for (const char* input : inputs) {
    const bool accepted = parser->Accepts(input);
    auto tags = tagger->Tag(input);
    std::string stream;
    for (const tagger::Tag& t : tags) {
      stream += tagger->grammar().tokens()[t.token].name + " ";
    }
    std::printf("%-12s | %-12s | %-10zu | %s\n", input,
                accepted ? "accepts" : "rejects", tags.size(),
                stream.c_str());
  }

  std::printf(
      "\nThe FSA (paper Fig. 2b) accepts a superset: on \"((0)\" it tags\n"
      "every token although the grammar requires balanced parentheses —\n"
      "the recursion state that would catch this was deliberately not\n"
      "implemented (\"we assume that the data already conforms to the\n"
      "grammar\", §3.1).\n");
  return 0;
}
