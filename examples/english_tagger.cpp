// The paper's §5.1 natural-language application: "if provided with a
// grammar for a natural language, a parser can be used as a front end to a
// high-speed semantic processing system. By identifying words within their
// context, a semantic processing system could more accurately define the
// meaning of each word."
//
// A miniature English grammar where the same word class (WORD) plays
// different grammatical roles. Context expansion (§3.2) mints one hardware
// tokenizer per role, so the tag stream labels each word as subject,
// verb or object — pure hardware part-of-speech tagging by position.
//
// Build & run:  ./build/examples/english_tagger

#include <cstdio>

#include "core/context_tagger.h"
#include "grammar/grammar_parser.h"

int main() {
  using namespace cfgtag;

  // sentence: [determiner] subject verb [determiner] object '.'
  const char* english = R"grm(
DET  "the"|"a"
WORD [a-z]+
%%
text:     sentence text_rest;
text_rest: | sentence text_rest;
sentence: noun_s verb_part `.';
noun_s:   DET WORD | WORD;
verb_part: WORD noun_o;
noun_o:   DET WORD | WORD;
%%
)grm";

  auto grammar = grammar::ParseGrammar(english);
  if (!grammar.ok()) {
    std::fprintf(stderr, "grammar error: %s\n",
                 grammar.status().ToString().c_str());
    return 1;
  }
  auto tagger = core::ContextualTagger::Compile(*grammar);
  if (!tagger.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 tagger.status().ToString().c_str());
    return 1;
  }

  const std::string input = "the cat chased a mouse . dogs sleep daily .";
  std::printf("input: \"%s\"\n\n", input.c_str());
  std::printf("%6s  %-10s  %s\n", "byte", "base", "grammatical context");

  // Map (production, position) to a human role label.
  auto role = [&](const core::ContextTag& t) -> const char* {
    if (t.base_token == grammar->FindToken("DET")) return "determiner";
    if (t.production < 0) return "";
    const auto& prods = grammar->productions();
    const std::string& lhs =
        grammar->nonterminals()[prods[t.production].lhs];
    if (lhs == "noun_s") return "SUBJECT";
    if (lhs == "verb_part") return "VERB";
    if (lhs == "noun_o") return "OBJECT";
    return lhs.c_str();
  };

  for (const core::ContextTag& t : tagger->Tag(input)) {
    const std::string base =
        t.base_token >= 0 ? grammar->tokens()[t.base_token].name : "?";
    std::printf("%6llu  %-10s  %-10s (%s)\n",
                static_cast<unsigned long long>(t.tag.end), base.c_str(),
                role(t), tagger->DescribeContext(t).c_str());
  }

  std::printf(
      "\nThe WORD occurrences carry distinct token identities — subject,\n"
      "verb, object — although they share one pattern: §3.2 token\n"
      "duplication doing hardware part-of-speech tagging.\n"
      "\n"
      "Note the double tags in the first sentence: \"the\" also matches\n"
      "WORD, so a second parse path (\"the\" as subject) runs in parallel\n"
      "and mislabels the next words until it dies out. That is the paper's\n"
      "§3.3 behaviour verbatim: \"if multiple transitions takes place, all\n"
      "of them can be executed in parallel ... only the correct transition\n"
      "path will be allowed to continue\" — compare the second sentence\n"
      "(\"dogs sleep daily\"), which has no determiner ambiguity and tags\n"
      "cleanly. A back-end can resolve such ties with the eq. 5 priority\n"
      "scheme (keyword beats generic word), as the XML-RPC router does.\n");
  return 0;
}
