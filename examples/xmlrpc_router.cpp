// The paper's §4 application: an XML-RPC content-based message router
// (Fig. 12). Messages for bank services (deposit / withdraw / acctinfo) go
// to port 1, shopping services (buy / sell / price) to port 2, everything
// else to port 0 — decided by the service token the hardware tags inside
// <methodName>, never by payload contents.
//
// Build & run:  ./build/examples/xmlrpc_router

#include <cstdio>

#include "rtl/device.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/router.h"

int main() {
  using namespace cfgtag;

  xmlrpc::RouterConfig config;
  config.services = {{"deposit", 1}, {"withdraw", 1}, {"acctinfo", 1},
                     {"buy", 2},     {"sell", 2},     {"price", 2}};
  config.default_port = 0;
  auto router = xmlrpc::XmlRpcRouter::Create(config);
  if (!router.ok()) {
    std::fprintf(stderr, "router error: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }

  const char* port_names[] = {"default", "bank server", "shopping server"};

  // Route a mixed workload.
  xmlrpc::MessageGenerator gen({}, /*seed=*/2006);
  std::printf("--- routing generated XML-RPC calls ---\n");
  int per_port[3] = {0, 0, 0};
  for (int i = 0; i < 12; ++i) {
    const std::string msg = gen.Generate();
    const int port = router->Route(msg);
    per_port[port]++;
    // Show the method name for the first few.
    if (i < 6) {
      const size_t at = msg.find("<methodName>") + 12;
      const size_t end = msg.find("</methodName>");
      std::printf("  %-12s -> port %d (%s)\n",
                  msg.substr(at, end - at).c_str(), port, port_names[port]);
    }
  }
  std::printf("  ... routed %d to bank, %d to shopping, %d to default\n",
              per_port[1], per_port[2], per_port[0]);

  // A payload that tries to smuggle a service name: the tagger only honours
  // <methodName> context, so this still routes to the bank.
  const std::string tricky =
      "<methodCall><methodName>deposit</methodName><params>"
      "<param><string>now buy sell price everything</string></param>"
      "</params></methodCall>";
  std::printf("\nadversarial payload (\"buy sell price\" inside a string):\n"
              "  -> port %d (%s)\n",
              router->Route(tricky), port_names[router->Route(tricky)]);

  // Cycle-accurate confirmation: the gate-level netlist routes identically.
  auto hw_port = router->RouteCycleAccurate(tricky);
  std::printf("  gate-level simulation agrees: port %d\n", *hw_port);

  // What this costs in hardware.
  auto report = router->tagger().Implement(rtl::Virtex4LX200());
  std::printf(
      "\nrouter tagger on %s: %zu LUTs, %.0f MHz, %.2f Gbps\n",
      report->device.c_str(), report->area.luts, report->timing.fmax_mhz,
      report->bandwidth_gbps);
  return 0;
}
