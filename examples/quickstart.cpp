// Quickstart: compile the paper's if-then-else grammar (Fig. 9) into a
// hardware token tagger, tag a sentence three ways (fast software model,
// cycle-accurate gate-level simulation, index-encoder bus), and print the
// implementation report for the paper's FPGA devices.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/token_tagger.h"
#include "grammar/analysis.h"
#include "grammar/grammar_parser.h"
#include "rtl/device.h"

int main() {
  using namespace cfgtag;

  // 1. A grammar in the Yacc-style input format (paper Fig. 9/14).
  const char* grammar_text = R"grm(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)grm";
  auto grammar = grammar::ParseGrammar(grammar_text);
  if (!grammar.ok()) {
    std::fprintf(stderr, "grammar error: %s\n",
                 grammar.status().ToString().c_str());
    return 1;
  }

  // 2. Peek at the analysis driving the hardware wiring: the Fig. 10
  // Follow sets.
  auto analysis = grammar::Analyze(*grammar);
  std::printf("--- First/Follow analysis (paper Fig. 10) ---\n%s\n",
              analysis->ToString(*grammar).c_str());

  // 3. Compile: grammar -> gate-level netlist + fast software model.
  auto tagger = core::CompiledTagger::Compile(std::move(grammar).value());
  if (!tagger.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 tagger.status().ToString().c_str());
    return 1;
  }

  // 4. Tag a sentence with the functional model.
  const std::string input = "if true then go else stop";
  std::printf("--- tagging: \"%s\" ---\n", input.c_str());
  for (const tagger::Tag& t : tagger->Tag(input)) {
    std::printf("  byte %2llu: token %-8s\n",
                static_cast<unsigned long long>(t.end),
                tagger->grammar().tokens()[t.token].name.c_str());
  }

  // 5. The same tags, but from the cycle-accurate netlist simulation.
  auto hw_tags = tagger->TagCycleAccurate(input);
  auto bus_tags = tagger->TagViaIndexBus(input);
  std::printf(
      "\ncycle-accurate simulation: %zu tags (%s the functional model)\n",
      hw_tags->size(),
      *hw_tags == tagger->Tag(input) ? "identical to" : "DIFFERS FROM");
  std::printf("index-encoder bus:         %zu tags\n", bus_tags->size());

  // 6. Area and timing on the paper's devices.
  for (const rtl::Device& device :
       {rtl::VirtexE2000(), rtl::Virtex4LX200()}) {
    auto report = tagger->Implement(device);
    std::printf(
        "\n%s: %zu LUTs, %zu FFs, %.0f MHz, %.2f Gbps\n  %s\n",
        device.name.c_str(), report->area.luts, report->area.ffs,
        report->timing.fmax_mhz, report->bandwidth_gbps,
        report->timing.ToString().c_str());
  }

  // 7. Export the design as VHDL (the paper generator's artifact).
  auto vhdl = tagger->ExportVhdl("ifthenelse_tagger");
  std::printf("\nVHDL export: %zu bytes (entity ifthenelse_tagger)\n",
              vhdl->size());
  return 0;
}
