// Context-aware network intrusion detection — the paper's motivating
// application (§1: naive pattern searches "are susceptible to false
// positive identifications"; §3.5: the back-end processor uses the
// contextual information of the tokens).
//
// A toy request protocol is tagged by the hardware; a back-end combines
// the *token context* (which byte ranges are the request path) with a
// multi-pattern signature scanner. Signatures like "/etc/passwd" then only
// fire inside path context — a plain Aho-Corasick scan over the whole
// stream also fires on header values and payload echoes.
//
// Build & run:  ./build/examples/nids_filter

#include <cstdio>

#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"

int main() {
  using namespace cfgtag;

  // REQ <path> HDR <header-value> END
  const char* protocol = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";
  auto grammar = grammar::ParseGrammar(protocol);

  // Signatures bound to the PATH context (§3.5 back-end): they only count
  // inside the byte spans the hardware tags as the request path.
  std::vector<nids::Rule> rules = {
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"DROPPER", "cmd.exe", "PATH", 2},
      {"TRAVERSAL", "../", "PATH", 3},
  };
  auto filter =
      nids::ContextFilter::Create(std::move(grammar).value(), rules);
  if (!filter.ok()) {
    std::fprintf(stderr, "filter error: %s\n",
                 filter.status().ToString().c_str());
    return 1;
  }

  auto context_alerts = [&](const std::string& request) {
    return static_cast<int>(filter->Scan(request).size());
  };
  auto naive_alerts = [&](const std::string& request) {
    return static_cast<int>(filter->ScanUngated(request).size());
  };

  const std::vector<std::pair<const char*, const char*>> traffic = {
      {"benign", "REQ /images/logo.png HDR mozilla/5.0 END"},
      {"attack: traversal", "REQ /a/../../etc/passwd HDR curl/8.0 END"},
      {"attack: dropper", "REQ /upload/cmd.exe HDR curl/8.0 END"},
      {"decoy in header", "REQ /index.html HDR scanner-/etc/passwd-probe END"},
      {"decoy in header 2", "REQ /robots.txt HDR old-../agent END"},
  };

  std::printf("%-22s | %14s | %14s\n", "request", "naive alerts",
              "context alerts");
  int naive_fp = 0, context_fp = 0;
  for (const auto& [label, request] : traffic) {
    const int naive = naive_alerts(request);
    const int ctx = context_alerts(request);
    std::printf("%-22s | %14d | %14d\n", label, naive, ctx);
    const bool is_attack = std::string(label).find("attack") == 0;
    if (!is_attack) {
      naive_fp += naive;
      context_fp += ctx;
    }
  }
  std::printf(
      "\nfalse positives on benign traffic: naive scanner %d, "
      "context-aware filter %d\n",
      naive_fp, context_fp);
  return 0;
}
