#ifndef CFGTAG_BENCH_BENCH_UTIL_H_
#define CFGTAG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/token_tagger.h"
#include "grammar/transforms.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::bench {

// Dies loudly: benches regenerate paper tables, a failure means the build
// is broken and the numbers would be meaningless. The abort message names
// the pipeline stage that was running (the tracer's last span path), so a
// techmap failure inside Compile is attributable without a debugger.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    const std::string span = obs::Tracer::Default().LastSpanPath();
    std::fprintf(stderr, "FATAL %s (last stage: %s): %s\n", what,
                 span.empty() ? "<none>" : span.c_str(),
                 status.ToString().c_str());
    std::abort();
  }
}

// Takes the StatusOr by value (never by reference): callers hand over
// ownership, and the value is moved out — uniform across lvalue/rvalue
// call sites.
template <typename T>
T ValueOrDie(StatusOr<T> v, const char* what) {
  CheckOk(v.status(), what);
  return std::move(v).value();
}

// XML-RPC grammar duplicated `copies` times — the paper's §4.3 scaling
// methodology.
inline grammar::Grammar DuplicatedXmlRpc(int copies) {
  auto base = xmlrpc::XmlRpcGrammar();
  CheckOk(base.status(), "XmlRpcGrammar");
  if (copies == 1) return std::move(base).value();
  auto dup = grammar::DuplicateGrammar(*base, copies);
  CheckOk(dup.status(), "DuplicateGrammar");
  return std::move(dup).value();
}

inline core::CompiledTagger CompileXmlRpc(int copies,
                                          const hwgen::HwOptions& opt = {}) {
  auto compiled = core::CompiledTagger::Compile(DuplicatedXmlRpc(copies), opt);
  CheckOk(compiled.status(), "Compile");
  return std::move(compiled).value();
}

// Strips the suite-wide --smoke flag out of argv (so downstream parsers —
// google-benchmark included — never see it) and reports whether it was
// present. Every bench main() calls this instead of hand-rolling the loop.
inline bool StripSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

// Parses and strips `--name=N` / `--name N` out of argv (the bench suite's
// own integer flags must never reach google-benchmark's parser). Returns
// `missing` when the flag is absent; dies on a malformed value, matching
// the suite's fail-loudly convention.
inline int StripIntFlag(int* argc, char** argv, const char* name,
                        int missing) {
  int value = missing;
  int out = 1;
  const size_t name_len = std::strlen(name);
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* text = nullptr;
    if (std::strncmp(arg, name, name_len) == 0 && arg[name_len] == '=') {
      text = arg + name_len + 1;
    } else if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "FATAL %s needs a value\n", name);
        std::abort();
      }
      text = argv[++i];
    } else {
      argv[out++] = argv[i];
      continue;
    }
    char* end = nullptr;
    const long parsed = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "FATAL %s: not an integer: %s\n", name, text);
      std::abort();
    }
    value = static_cast<int>(parsed);
  }
  *argc = out;
  return value;
}

// Starts the loopback stats server when `port` >= 0 (0 picks an ephemeral
// port) and switches hot-path attribution on so /rules has content to
// serve. The server lives for the rest of the process — bench binaries
// exit via return from main, which is fine: the leaked server's socket
// closes with the process. Returns the bound port, or -1 when no server
// was requested.
inline int MaybeServeStats(int port) {
  if (port < 0) return -1;
  obs::AttributionTable::set_enabled(true);
  static obs::StatsServer* const kServer = new obs::StatsServer;
  CheckOk(kServer->Start(port), "stats server");
  std::fprintf(stderr,
               "stats server on http://127.0.0.1:%d/ (/metrics /metrics.json "
               "/trace.json /events /rules /healthz)\n",
               kServer->port());
  return kServer->port();
}

// Keeps the process alive for `seconds` after the bench body finishes, so
// an external scraper (the CI smoke job) has a window to curl the stats
// endpoints before the process exits.
inline void HoldStats(int seconds) {
  if (seconds <= 0) return;
  std::fprintf(stderr, "holding %d s for stats scrapes\n", seconds);
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
}

// Dumps the default metrics registry — populated by the instrumented paths
// the bench exercised plus the bench's own gauges — as JSON to `path`, the
// machine-readable trail BENCH_*.json trajectories and the CI perf gate
// consume.
inline void WriteMetricsJson(const char* path) {
  std::ofstream out(path, std::ios::binary);
  out << obs::MetricsRegistry::Default().ToJson();
  if (out) {
    std::fprintf(stderr, "wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", path);
  }
}

}  // namespace cfgtag::bench

#endif  // CFGTAG_BENCH_BENCH_UTIL_H_
