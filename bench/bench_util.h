#ifndef CFGTAG_BENCH_BENCH_UTIL_H_
#define CFGTAG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/status.h"
#include "core/token_tagger.h"
#include "grammar/transforms.h"
#include "obs/trace.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::bench {

// Dies loudly: benches regenerate paper tables, a failure means the build
// is broken and the numbers would be meaningless. The abort message names
// the pipeline stage that was running (the tracer's last span path), so a
// techmap failure inside Compile is attributable without a debugger.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    const std::string span = obs::Tracer::Default().LastSpanPath();
    std::fprintf(stderr, "FATAL %s (last stage: %s): %s\n", what,
                 span.empty() ? "<none>" : span.c_str(),
                 status.ToString().c_str());
    std::abort();
  }
}

// Takes the StatusOr by value (never by reference): callers hand over
// ownership, and the value is moved out — uniform across lvalue/rvalue
// call sites.
template <typename T>
T ValueOrDie(StatusOr<T> v, const char* what) {
  CheckOk(v.status(), what);
  return std::move(v).value();
}

// XML-RPC grammar duplicated `copies` times — the paper's §4.3 scaling
// methodology.
inline grammar::Grammar DuplicatedXmlRpc(int copies) {
  auto base = xmlrpc::XmlRpcGrammar();
  CheckOk(base.status(), "XmlRpcGrammar");
  if (copies == 1) return std::move(base).value();
  auto dup = grammar::DuplicateGrammar(*base, copies);
  CheckOk(dup.status(), "DuplicateGrammar");
  return std::move(dup).value();
}

inline core::CompiledTagger CompileXmlRpc(int copies,
                                          const hwgen::HwOptions& opt = {}) {
  auto compiled = core::CompiledTagger::Compile(DuplicatedXmlRpc(copies), opt);
  CheckOk(compiled.status(), "Compile");
  return std::move(compiled).value();
}

}  // namespace cfgtag::bench

#endif  // CFGTAG_BENCH_BENCH_UTIL_H_
