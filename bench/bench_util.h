#ifndef CFGTAG_BENCH_BENCH_UTIL_H_
#define CFGTAG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/status.h"
#include "core/token_tagger.h"
#include "grammar/transforms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::bench {

// Dies loudly: benches regenerate paper tables, a failure means the build
// is broken and the numbers would be meaningless. The abort message names
// the pipeline stage that was running (the tracer's last span path), so a
// techmap failure inside Compile is attributable without a debugger.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    const std::string span = obs::Tracer::Default().LastSpanPath();
    std::fprintf(stderr, "FATAL %s (last stage: %s): %s\n", what,
                 span.empty() ? "<none>" : span.c_str(),
                 status.ToString().c_str());
    std::abort();
  }
}

// Takes the StatusOr by value (never by reference): callers hand over
// ownership, and the value is moved out — uniform across lvalue/rvalue
// call sites.
template <typename T>
T ValueOrDie(StatusOr<T> v, const char* what) {
  CheckOk(v.status(), what);
  return std::move(v).value();
}

// XML-RPC grammar duplicated `copies` times — the paper's §4.3 scaling
// methodology.
inline grammar::Grammar DuplicatedXmlRpc(int copies) {
  auto base = xmlrpc::XmlRpcGrammar();
  CheckOk(base.status(), "XmlRpcGrammar");
  if (copies == 1) return std::move(base).value();
  auto dup = grammar::DuplicateGrammar(*base, copies);
  CheckOk(dup.status(), "DuplicateGrammar");
  return std::move(dup).value();
}

inline core::CompiledTagger CompileXmlRpc(int copies,
                                          const hwgen::HwOptions& opt = {}) {
  auto compiled = core::CompiledTagger::Compile(DuplicatedXmlRpc(copies), opt);
  CheckOk(compiled.status(), "Compile");
  return std::move(compiled).value();
}

// Strips the suite-wide --smoke flag out of argv (so downstream parsers —
// google-benchmark included — never see it) and reports whether it was
// present. Every bench main() calls this instead of hand-rolling the loop.
inline bool StripSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

// Dumps the default metrics registry — populated by the instrumented paths
// the bench exercised plus the bench's own gauges — as JSON to `path`, the
// machine-readable trail BENCH_*.json trajectories and the CI perf gate
// consume.
inline void WriteMetricsJson(const char* path) {
  std::ofstream out(path, std::ios::binary);
  out << obs::MetricsRegistry::Default().ToJson();
  if (out) {
    std::fprintf(stderr, "wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", path);
  }
}

}  // namespace cfgtag::bench

#endif  // CFGTAG_BENCH_BENCH_UTIL_H_
