// Context-gated intrusion detection (the paper's §1 motivation as a
// subsystem): signature matching restricted to grammatical context vs the
// same signatures applied context-free. Reports per-rule-count false
// positives on decoy-laden traffic, and scan throughput.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"
#include "nids/scan_engine.h"
#include "obs/metrics.h"

namespace cfgtag::bench {
namespace {

constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

std::vector<nids::Rule> MakeRules(int n) {
  std::vector<nids::Rule> rules = {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"DROPPER", "cmd.exe", "PATH", 2},
      {"SHELL", "bin/sh", "PATH", 2},
  };
  // Synthetic additional signatures.
  Rng rng(2006);
  while (static_cast<int>(rules.size()) < n) {
    rules.push_back({"SYN-" + std::to_string(rules.size()),
                     "sig" + rng.NextString(6, "abcdef0123456789"),
                     "PATH", 1});
  }
  rules.resize(n);
  return rules;
}

// Traffic: benign requests whose *header values* embed signature strings
// (decoys). Every alert is a false positive by construction.
std::string MakeDecoyTraffic(const std::vector<nids::Rule>& rules,
                             int messages, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < messages; ++i) {
    out += "REQ /static/" + rng.NextString(8, "abcdefgh") + ".html HDR ";
    out += "agent-";
    // Embed a random rule's pattern in the header value (escaping '/'
    // which WORD also accepts, so the decoy stays in-token).
    out += rules[rng.NextIndex(rules.size())].pattern;
    out += "-v" + std::to_string(rng.NextIndex(10));
    out += " END\n";
  }
  return out;
}

void Run(bool smoke) {
  auto g = grammar::ParseGrammar(kProtocol);
  CheckOk(g.status(), "protocol grammar");
  const int messages = smoke ? 60 : 400;

  std::printf(
      "Context-gated NIDS vs context-free signatures\n"
      "(decoy traffic: every signature hit is a false positive)\n\n");
  std::printf("%8s | %12s %12s | %14s %14s %14s %14s\n", "rules",
              "naive FPs", "context FPs", "scan MB/s", "fused MB/s",
              "lazy MB/s", "engine4 MB/s");

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (int nrules : {4, 16, 64}) {
    auto rules = MakeRules(nrules);
    hwgen::HwOptions opt;
    opt.tagger.arm_mode = tagger::ArmMode::kResync;
    auto filter = ValueOrDie(
        nids::ContextFilter::Create(g->Clone(), rules, opt), "filter");
    // The same filter with the fused tagging backend behind Scan().
    opt.tagger.backend = tagger::TaggerBackend::kFused;
    auto fused_filter = ValueOrDie(
        nids::ContextFilter::Create(g->Clone(), rules, opt), "fused filter");
    // And with the lazy-DFA backend.
    opt.tagger.backend = tagger::TaggerBackend::kLazyDfa;
    auto lazy_filter = ValueOrDie(
        nids::ContextFilter::Create(g->Clone(), rules, opt), "lazy filter");
    const std::string traffic = MakeDecoyTraffic(rules, messages, 7);

    const auto naive = filter.ScanUngated(traffic);
    nids::ScanStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto context = filter.Scan(traffic, &stats);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    // Fused backend: identical alerts required before timing counts.
    const auto t4 = std::chrono::steady_clock::now();
    const auto fused_alerts = fused_filter.Scan(traffic);
    const auto t5 = std::chrono::steady_clock::now();
    const double fsecs = std::chrono::duration<double>(t5 - t4).count();
    if (fused_alerts != context) {
      std::fprintf(stderr, "FATAL fused/functional alert mismatch\n");
      std::abort();
    }

    // Lazy-DFA backend: same contract.
    const auto t6 = std::chrono::steady_clock::now();
    const auto lazy_alerts = lazy_filter.Scan(traffic);
    const auto t7 = std::chrono::steady_clock::now();
    const double lsecs = std::chrono::duration<double>(t7 - t6).count();
    if (lazy_alerts != context) {
      std::fprintf(stderr, "FATAL lazy/functional alert mismatch\n");
      std::abort();
    }

    // The same scan through the parallel engine, sharded across 4
    // workers — the before/after of the batch-scan change.
    nids::ScanEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.min_shard_bytes = 1 << 10;
    nids::ScanEngine engine(&filter, eopt);
    const auto t2 = std::chrono::steady_clock::now();
    const auto parallel = engine.ScanStream(traffic);
    const auto t3 = std::chrono::steady_clock::now();
    const double esecs = std::chrono::duration<double>(t3 - t2).count();
    if (parallel.alerts != context) {
      std::fprintf(stderr, "FATAL engine/sequential alert mismatch\n");
      std::abort();
    }
    const double scan_mbps = traffic.size() / 1e6 / (secs > 0 ? secs : 1e-9);
    const double fused_mbps =
        traffic.size() / 1e6 / (fsecs > 0 ? fsecs : 1e-9);
    const double lazy_mbps =
        traffic.size() / 1e6 / (lsecs > 0 ? lsecs : 1e-9);
    std::printf("%8d | %12zu %12zu | %14.1f %14.1f %14.1f %14.1f\n", nrules,
                naive.size(), context.size(), scan_mbps, fused_mbps,
                lazy_mbps,
                traffic.size() / 1e6 / (esecs > 0 ? esecs : 1e-9));
    const std::string rules_label = "rules=\"" + std::to_string(nrules) +
                                    "\"";
    reg.GetGauge("cfgtag_bench_nids_mbps{backend=\"functional\"," +
                     rules_label + "}",
                 "ContextFilter::Scan MB/s by tagging backend")
        ->Set(scan_mbps);
    reg.GetGauge(
           "cfgtag_bench_nids_mbps{backend=\"fused\"," + rules_label + "}",
           "ContextFilter::Scan MB/s by tagging backend")
        ->Set(fused_mbps);
    reg.GetGauge(
           "cfgtag_bench_nids_mbps{backend=\"lazy_dfa\"," + rules_label +
               "}",
           "ContextFilter::Scan MB/s by tagging backend")
        ->Set(lazy_mbps);
  }

  std::printf(
      "\nExpected shape: the context-free scanner alerts on every decoy;\n"
      "the context filter scans only PATH spans and stays silent. Attack\n"
      "traffic (signatures in the path) alerts in both (see nids_test).\n");

  WriteMetricsJson("bench_metrics.json");
}

}  // namespace
}  // namespace cfgtag::bench

int main(int argc, char** argv) {
  const bool smoke = cfgtag::bench::StripSmokeFlag(&argc, argv);
  // --stats-port serves the observability endpoints over loopback for the
  // life of the run (and switches attribution on, so /rules ranks the NIDS
  // rules this bench fires); --stats-hold-seconds leaves a scrape window.
  const int stats_port =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-port", -1);
  const int stats_hold =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-hold-seconds", 0);
  cfgtag::bench::MaybeServeStats(stats_port);
  cfgtag::bench::Run(smoke);
  cfgtag::bench::HoldStats(stats_hold);
  return 0;
}
