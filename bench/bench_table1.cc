// Regenerates paper Table 1: device utilization for XML token taggers of
// varying sizes. Grammar sizes are produced by duplicating the XML-RPC
// grammar (the paper's methodology); frequency and LUT counts come from the
// library's technology mapper and calibrated device timing models.
//
// Compare the Measured columns against the Paper columns: absolute LUT
// counts are expected to run ~2x the paper's (our generated design carries
// the longest-match look-ahead, arm-hold registers and the index encoder
// explicitly); the trends — BW falling with size, LUTs/Byte falling with
// size — and the calibrated anchor frequencies must reproduce.

#include <cstdio>

#include "bench/bench_util.h"
#include "rtl/device.h"

namespace cfgtag::bench {
namespace {

struct PaperRow {
  const char* device;
  int copies;
  double freq_mhz;
  double bw_gbps;
  int bytes;
  int luts;
  double luts_per_byte;
};

// Table 1 of the paper, verbatim.
constexpr PaperRow kPaperRows[] = {
    {"VirtexE 2000", 1, 196, 1.57, 300, 310, 1.03},
    {"Virtex4 LX200", 1, 533, 4.26, 300, 302, 1.01},
    {"Virtex4 LX200", 2, 497, 3.97, 600, 526, 0.88},
    {"Virtex4 LX200", 4, 445, 3.56, 1200, 975, 0.81},
    {"Virtex4 LX200", 7, 318, 2.54, 2100, 1652, 0.79},
    {"Virtex4 LX200", 10, 316, 2.53, 3000, 2316, 0.77},
};

void Run() {
  std::printf(
      "Table 1: device utilization for XML token taggers of varying sizes\n"
      "(grammar scaled by duplicating the XML-RPC grammar, as in the "
      "paper)\n\n");
  std::printf(
      "%-14s %6s | %9s %8s %7s %7s %9s | %9s %8s %7s %9s\n", "Device",
      "Copies", "Freq", "BW", "Bytes", "LUTs", "LUTs/B", "Freq", "BW",
      "LUTs", "LUTs/B");
  std::printf("%-14s %6s | %9s %8s %7s %7s %9s | %9s %8s %7s %9s\n", "", "",
              "(MHz)", "(Gbps)", "", "", "", "(MHz)", "(Gbps)", "", "");
  std::printf("%-21s | %44s | %36s\n", "", "----------- measured -----------",
              "------- paper -------");

  for (const PaperRow& row : kPaperRows) {
    const rtl::Device device = row.device == std::string("VirtexE 2000")
                                   ? rtl::VirtexE2000()
                                   : rtl::Virtex4LX200();
    core::CompiledTagger tagger = CompileXmlRpc(row.copies);
    auto report = ValueOrDie(tagger.Implement(device), "Implement");
    std::printf(
        "%-14s %6d | %9.0f %8.2f %7zu %7zu %9.2f | %9.0f %8.2f %7d %9.2f\n",
        row.device, row.copies, report.timing.fmax_mhz,
        report.bandwidth_gbps, report.area.pattern_bytes, report.area.luts,
        report.area.luts_per_byte, row.freq_mhz, row.bw_gbps, row.luts,
        row.luts_per_byte);
  }

  // §4.3 timing analysis: the critical path of the large design must be
  // routing delay on a decoded-character net approaching 2 ns.
  core::CompiledTagger big = CompileXmlRpc(10);
  auto report = ValueOrDie(big.Implement(rtl::Virtex4LX200()), "Implement");
  std::printf(
      "\nCritical path of the 3000-byte design (paper: \"entirely routing "
      "delay\nassociated with the large fanout of the decoded character "
      "bits ... just\nunder 2 ns\"):\n  %s\n",
      report.timing.ToString().c_str());

  // Module breakdown: shows why LUTs/Byte falls with grammar size — the
  // decoder (and encoder) amortize while tokenizer logic grows linearly.
  std::printf("\nLUT breakdown by module (decoder amortization):\n");
  std::printf("  %-10s | %10s %10s\n", "module", "300 B", "3000 B");
  core::CompiledTagger small = CompileXmlRpc(1);
  auto small_report =
      ValueOrDie(small.Implement(rtl::Virtex4LX200()), "Implement");
  for (const rtl::AreaBucket& bucket : small_report.area.breakdown) {
    size_t big_luts = 0;
    for (const rtl::AreaBucket& b : report.area.breakdown) {
      if (b.scope == bucket.scope) big_luts = b.luts;
    }
    std::printf("  %-10s | %10zu %10zu\n",
                bucket.scope.empty() ? "(misc)" : bucket.scope.c_str(),
                bucket.luts, big_luts);
  }
}

}  // namespace
}  // namespace cfgtag::bench

int main() {
  cfgtag::bench::Run();
  return 0;
}
