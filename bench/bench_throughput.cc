// Software throughput of every engine in the repository (google-benchmark).
// The paper's hardware throughput is Fmax x 1 byte/cycle (reported by
// bench_table1); these benches measure what the *software* components
// deliver on the host: the bit-parallel functional model, the reference LL
// parser, the Aho-Corasick naive matcher, and the cycle-accurate gate-level
// simulation (orders of magnitude slower, by design).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "tagger/artifact/cache.h"
#include "obs/metrics.h"
#include "tagger/functional_model.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"
#include "tagger/lexer.h"
#include "tagger/ll_parser.h"
#include "tagger/naive_matcher.h"
#include "tagger/simd/dispatch.h"
#include "xmlrpc/message_gen.h"

namespace cfgtag::bench {
namespace {

const std::string& Workload() {
  static const std::string* const kStream = [] {
    xmlrpc::MessageGenerator gen({}, /*seed=*/42);
    return new std::string(gen.GenerateStream(/*count=*/0, /*min_bytes=*/1 << 20));
  }();
  return *kStream;
}

// One XML-RPC message (streams of messages are not a sentence of the
// Fig. 14 grammar, so the LL benchmark parses per message).
const std::vector<std::string>& Messages() {
  static const std::vector<std::string>* const kMessages = [] {
    xmlrpc::MessageGenerator gen({}, /*seed=*/43);
    auto* v = new std::vector<std::string>;
    for (int i = 0; i < 64; ++i) v->push_back(gen.Generate());
    return v;
  }();
  return *kMessages;
}

void BM_FunctionalModel(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  core::CompiledTagger tagger = CompileXmlRpc(copies);
  const std::string& input = Workload();
  size_t tags = 0;
  for (auto _ : state) {
    tagger.Tag(input, [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    });
  }
  benchmark::DoNotOptimize(tags);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.counters["grammar_bytes"] =
      static_cast<double>(tagger.hardware().pattern_bytes);
}
BENCHMARK(BM_FunctionalModel)->Arg(1)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FusedModel(benchmark::State& state) {
  // Same machine, fused backend: one word-aligned global state bitmap
  // stepped with byte-class-compressed masks.
  const int copies = static_cast<int>(state.range(0));
  hwgen::HwOptions opt;
  opt.tagger.backend = tagger::TaggerBackend::kFused;
  core::CompiledTagger tagger = CompileXmlRpc(copies, opt);
  const std::string& input = Workload();
  size_t tags = 0;
  for (auto _ : state) {
    tagger.Tag(input, [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    });
  }
  benchmark::DoNotOptimize(tags);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.counters["byte_classes"] =
      static_cast<double>(tagger.fused_model()->NumByteClasses());
}
BENCHMARK(BM_FusedModel)->Arg(1)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_LazyDfaModel(benchmark::State& state) {
  // The fused engine memoized as a lazily built DFA: interned global-
  // bitmap configurations, byte-class alphabet, cached tag emissions.
  const int copies = static_cast<int>(state.range(0));
  hwgen::HwOptions opt;
  opt.tagger.backend = tagger::TaggerBackend::kLazyDfa;
  core::CompiledTagger tagger = CompileXmlRpc(copies, opt);
  const std::string& input = Workload();
  size_t tags = 0;
  for (auto _ : state) {
    tagger.Tag(input, [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    });
  }
  benchmark::DoNotOptimize(tags);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.counters["byte_classes"] = static_cast<double>(
      tagger.lazy_model()->fused().NumByteClasses());
}
BENCHMARK(BM_LazyDfaModel)->Arg(1)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_LlParser(benchmark::State& state) {
  auto g = xmlrpc::XmlRpcGrammar();
  CheckOk(g.status(), "grammar");
  auto parser =
      ValueOrDie(tagger::PredictiveParser::Create(&g.value(), {}), "parser");
  size_t bytes = 0;
  for (auto _ : state) {
    for (const std::string& msg : Messages()) {
      auto tags = parser.Parse(msg);
      benchmark::DoNotOptimize(tags);
      bytes += msg.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_LlParser)->Unit(benchmark::kMillisecond);

void BM_FlexStyleLexer(benchmark::State& state) {
  // Context-free combined-DFA lexing — fast, but blind to grammar context.
  auto g = xmlrpc::XmlRpcGrammar();
  CheckOk(g.status(), "grammar");
  auto lexer = ValueOrDie(tagger::Lexer::Create(&g.value()), "lexer");
  const std::string& input = Workload();
  for (auto _ : state) {
    auto tags = lexer.Lex(input);
    benchmark::DoNotOptimize(tags);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_FlexStyleLexer)->Unit(benchmark::kMillisecond);

void BM_NaiveMatcher(benchmark::State& state) {
  tagger::NaiveMatcher naive(
      {"deposit", "withdraw", "acctinfo", "buy", "sell", "price"});
  const std::string& input = Workload();
  for (auto _ : state) {
    size_t hits = 0;
    naive.Scan(input, [&hits](int32_t, uint64_t) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_NaiveMatcher)->Unit(benchmark::kMillisecond);

void BM_CycleAccurateSim(benchmark::State& state) {
  core::CompiledTagger tagger = CompileXmlRpc(1);
  xmlrpc::MessageGenerator gen({}, 7);
  const std::string msg = gen.Generate();
  for (auto _ : state) {
    auto tags = tagger.TagCycleAccurate(msg);
    CheckOk(tags.status(), "sim");
    benchmark::DoNotOptimize(tags);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(msg.size()));
}
BENCHMARK(BM_CycleAccurateSim)->Unit(benchmark::kMillisecond);

void BM_CompileTagger(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::CompiledTagger tagger = CompileXmlRpc(copies);
    benchmark::DoNotOptimize(tagger.hardware().pattern_bytes);
  }
}
BENCHMARK(BM_CompileTagger)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ImplementFlow(benchmark::State& state) {
  // Tech map + timing analysis (the "vendor flow" substitute).
  const int copies = static_cast<int>(state.range(0));
  core::CompiledTagger tagger = CompileXmlRpc(copies);
  for (auto _ : state) {
    auto report = tagger.Implement(rtl::Virtex4LX200());
    CheckOk(report.status(), "implement");
    benchmark::DoNotOptimize(report->area.luts);
  }
}
BENCHMARK(BM_ImplementFlow)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

// Head-to-head backend comparison on the sustained (resync) workload —
// all three software engines tag the same byte stream end to end,
// equivalence-checked first, and the resulting MB/s land in
// bench_metrics.json / BENCH_4.json as
// cfgtag_bench_backend_mbps{backend=...,copies=...} gauges plus the
// cfgtag_bench_backend_speedup{copies=...} (fused over functional) and
// cfgtag_bench_lazy_over_fused_speedup{copies=...} ratios — the latter is
// the CI release-bench gate. Resync mode keeps every message live
// (anchored mode goes dead after the first message, which the idle fast
// paths would skip outright and the comparison would measure nothing).
void RecordBackendComparison(bool smoke) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string& full = Workload();
  const std::string_view input =
      smoke ? std::string_view(full).substr(0, 128 << 10)
            : std::string_view(full);
  const int iters = smoke ? 1 : 3;

  std::printf("\nBackend comparison (%zu KB, resync mode, %d iteration%s)\n",
              input.size() >> 10, iters, iters == 1 ? "" : "s");
  std::printf("%8s | %14s %14s %14s | %8s %10s\n", "copies",
              "functional MB/s", "fused MB/s", "lazy-dfa MB/s", "speedup",
              "lazy/fused");

  auto time_engine = [&](const auto& engine) {
    size_t tags = 0;
    const tagger::TagSink sink = [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) engine.Run(input, sink);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count() / iters;
    return input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  };

  for (int copies : {1, 4, 10}) {
    const grammar::Grammar g = DuplicatedXmlRpc(copies);
    tagger::TaggerOptions topt;
    topt.arm_mode = tagger::ArmMode::kResync;
    auto functional =
        ValueOrDie(tagger::FunctionalTagger::Create(&g, topt), "functional");
    auto fused = ValueOrDie(tagger::FusedTagger::Create(&g, topt), "fused");
    auto lazy = ValueOrDie(tagger::LazyDfaTagger::Create(&g, topt), "lazy");
    // Tag-for-tag equivalence before timing anything.
    const auto want = functional.TagAll(input);
    if (fused.TagAll(input) != want) {
      std::fprintf(stderr, "FATAL fused/functional tag mismatch (x%d)\n",
                   copies);
      std::abort();
    }
    if (lazy.TagAll(input) != want) {
      std::fprintf(stderr, "FATAL lazy/functional tag mismatch (x%d)\n",
                   copies);
      std::abort();
    }
    const double functional_mbps = time_engine(functional);
    const double fused_mbps = time_engine(fused);
    const double lazy_mbps = time_engine(lazy);
    const double speedup = fused_mbps / functional_mbps;
    const double lazy_over_fused = lazy_mbps / fused_mbps;
    std::printf("%8d | %14.1f %14.1f %14.1f | %7.2fx %9.2fx\n", copies,
                functional_mbps, fused_mbps, lazy_mbps, speedup,
                lazy_over_fused);
    const std::string copies_label = "copies=\"" + std::to_string(copies) +
                                     "\"";
    reg.GetGauge("cfgtag_bench_backend_mbps{backend=\"functional\"," +
                     copies_label + "}",
                 "Sustained tagging MB/s of the software backend")
        ->Set(functional_mbps);
    reg.GetGauge(
           "cfgtag_bench_backend_mbps{backend=\"fused\"," + copies_label +
               "}",
           "Sustained tagging MB/s of the software backend")
        ->Set(fused_mbps);
    reg.GetGauge("cfgtag_bench_backend_mbps{backend=\"lazy_dfa\"," +
                     copies_label + "}",
                 "Sustained tagging MB/s of the software backend")
        ->Set(lazy_mbps);
    reg.GetGauge("cfgtag_bench_backend_speedup{" + copies_label + "}",
                 "Fused over functional throughput ratio")
        ->Set(speedup);
    reg.GetGauge(
           "cfgtag_bench_lazy_over_fused_speedup{" + copies_label + "}",
           "Lazy-DFA over fused throughput ratio (CI gate: must stay "
           ">= 1.0 on the XML-RPC workload)")
        ->Set(lazy_over_fused);
  }

  // Context-free lexer baseline on the same bytes (copies don't apply: the
  // combined DFA is one machine either way).
  auto g = xmlrpc::XmlRpcGrammar();
  CheckOk(g.status(), "grammar");
  auto lexer = ValueOrDie(tagger::Lexer::Create(&g.value()), "lexer");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto tags = lexer.Lex(input);
    benchmark::DoNotOptimize(tags);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count() / iters;
  const double lexer_mbps = input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  std::printf("%8s | %14.1f (context-free DFA baseline)\n", "lexer",
              lexer_mbps);
  reg.GetGauge("cfgtag_bench_backend_mbps{backend=\"lexer\"}",
               "Context-free combined-DFA lexer MB/s baseline")
      ->Set(lexer_mbps);
}

// Scalar-vs-SIMD dispatch comparison on a delimiter-heavy stream — the
// workload the vector kernels exist for. The generator emulates
// heavily padded XML-RPC (whitespace between almost every token pair,
// in runs of 256-1024 bytes — the shape of indentation-padded or
// keepalive-padded feeds), so idle delimiter skipping and chunked
// classification dominate the byte count. Both compiled
// backends tag the stream under forced-scalar and under the best vector
// tier the host offers, equivalence-checked first; MB/s land in
// BENCH_8.json as cfgtag_bench_simd_mbps{backend=...,dispatch=...} and the
// ratio as cfgtag_bench_simd_speedup{backend=...}.
void RecordSimdComparison(bool smoke) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static const std::string* const kWsHeavy = [] {
    xmlrpc::MessageGenOptions opt;
    opt.whitespace_prob = 0.97;
    opt.ws_run_min = 256;
    opt.ws_run_max = 1024;
    xmlrpc::MessageGenerator gen(opt, /*seed=*/44);
    return new std::string(
        gen.GenerateStream(/*count=*/0, /*min_bytes=*/1 << 20));
  }();
  const std::string_view input =
      smoke ? std::string_view(*kWsHeavy).substr(0, 128 << 10)
            : std::string_view(*kWsHeavy);
  const int iters = smoke ? 1 : 3;

  const tagger::simd::Isa best = tagger::simd::BestAvailable();
  std::printf(
      "\nSIMD dispatch comparison (%zu KB delimiter-heavy, resync mode, "
      "best tier %s)\n",
      input.size() >> 10, tagger::simd::IsaName(best));
  std::printf("%8s | %12s %12s | %8s\n", "backend", "scalar MB/s",
              "simd MB/s", "speedup");

  const grammar::Grammar g = DuplicatedXmlRpc(1);
  tagger::TaggerOptions topt;
  topt.arm_mode = tagger::ArmMode::kResync;
  auto fused = ValueOrDie(tagger::FusedTagger::Create(&g, topt), "fused");
  auto lazy = ValueOrDie(tagger::LazyDfaTagger::Create(&g, topt), "lazy");

  auto time_engine = [&](const auto& engine) {
    size_t tags = 0;
    const tagger::TagSink sink = [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    };
    engine.Run(input, sink);  // warm-up (and, for the lazy DFA, cache fill)
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) engine.Run(input, sink);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(tags);
    const double secs =
        std::chrono::duration<double>(t1 - t0).count() / iters;
    return input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  };

  auto run_backend = [&](const char* name, const auto& engine) {
    // Byte-identical tags under both dispatches before timing anything.
    tagger::simd::ForceIsa(tagger::simd::Isa::kScalar);
    const auto want = engine.TagAll(input);
    tagger::simd::ForceIsa(best);
    if (engine.TagAll(input) != want) {
      std::fprintf(stderr, "FATAL %s scalar/simd tag mismatch\n", name);
      std::abort();
    }
    tagger::simd::ForceIsa(tagger::simd::Isa::kScalar);
    const double scalar_mbps = time_engine(engine);
    tagger::simd::ForceIsa(best);
    const double simd_mbps = time_engine(engine);
    const double speedup = simd_mbps / scalar_mbps;
    std::printf("%8s | %12.1f %12.1f | %7.2fx\n", name, scalar_mbps,
                simd_mbps, speedup);
    const std::string backend_label = std::string("backend=\"") + name + "\"";
    reg.GetGauge("cfgtag_bench_simd_mbps{" + backend_label +
                     ",dispatch=\"scalar\"}",
                 "Delimiter-heavy tagging MB/s under forced-scalar dispatch")
        ->Set(scalar_mbps);
    reg.GetGauge("cfgtag_bench_simd_mbps{" + backend_label +
                     ",dispatch=\"simd\"}",
                 "Delimiter-heavy tagging MB/s under the best vector tier")
        ->Set(simd_mbps);
    reg.GetGauge("cfgtag_bench_simd_speedup{" + backend_label + "}",
                 "Vectorized over forced-scalar throughput ratio on the "
                 "delimiter-heavy workload")
        ->Set(speedup);
  };
  run_backend("fused", fused);
  run_backend("lazy_dfa", lazy);
  tagger::simd::ClearForcedIsa();
}

// Cold-start economics of the compiled-tagger artifacts (BENCH_9.json).
// Two claims are measured, both CI-gated:
//   1. Loading a serialized artifact (mmap + validate + table binding) is
//      >= 10x faster than the work a compile-cache miss does — compiling
//      the grammar from source plus baking the AOT transition table. That
//      is exactly what a cache hit skips.
//   2. With the AOT-determinized transition table baked into the artifact,
//      a *fresh* lazy-DFA session's first megabyte runs within 10% of its
//      warmed-up steady state (cfgtag_bench_artifact_coldstart_ratio) —
//      the baked table replaces the cache-fill transient.
// Tag equivalence between the compiled and the loaded tagger is asserted
// before anything is timed.
void RecordArtifactComparison(bool smoke) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string& full = Workload();
  const std::string_view input =
      smoke ? std::string_view(full).substr(0, 128 << 10)
            : std::string_view(full);

  hwgen::HwOptions opt;
  opt.tagger.backend = tagger::TaggerBackend::kLazyDfa;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  // The default 4096-state budget covers the BFS-shallow prefix of the
  // product space, but this workload's hot loop lives ~600 states deep and
  // only partially inside it. 16384 lets the determinization close the
  // reachable space (it converges well under the budget), so the baked
  // table covers every state the stream touches — the tuning rule
  // docs/artifact_cache.md gives for cold-start-critical deployments.
  opt.tagger.aot_state_budget = 16384;

  // --- miss-path (compile + AOT bake) vs hit-path (load) wall time -------
  const auto c0 = std::chrono::steady_clock::now();
  core::CompiledTagger compiled = CompileXmlRpc(1, opt);
  const std::string bytes =
      ValueOrDie(compiled.Serialize(), "artifact serialize");
  const auto c1 = std::chrono::steady_clock::now();
  const double compile_secs = std::chrono::duration<double>(c1 - c0).count();
  const std::string path =
      "bench_artifact_" + std::to_string(::getpid()) + ".cfgtag";
  CheckOk(tagger::artifact::AtomicWriteFile(path, bytes), "artifact write");

  const int load_reps = smoke ? 3 : 7;
  double load_secs = 1e9;
  for (int r = 0; r < load_reps; ++r) {
    const auto l0 = std::chrono::steady_clock::now();
    auto loaded = core::CompiledTagger::LoadArtifact(path);
    const auto l1 = std::chrono::steady_clock::now();
    CheckOk(loaded.status(), "artifact load");
    load_secs =
        std::min(load_secs, std::chrono::duration<double>(l1 - l0).count());
  }
  const double load_speedup = compile_secs / (load_secs > 0 ? load_secs : 1e-9);

  // --- equivalence before timing anything else ---------------------------
  core::CompiledTagger loaded =
      ValueOrDie(core::CompiledTagger::LoadArtifact(path), "artifact load");
  {
    const auto want = compiled.Tag(input);
    if (loaded.Tag(input) != want) {
      std::fprintf(stderr, "FATAL artifact/compiled tag mismatch\n");
      std::abort();
    }
  }

  // --- cold start out of the baked AOT table -----------------------------
  // Each repetition loads a *fresh* tagger (empty runtime transition
  // cache, baked table only) and times its very first pass over the slice;
  // the warm figure is the same tagger's third pass (the second finishes
  // filling whatever the AOT budget left out). Medians across repetitions
  // reject scheduler bursts. The slice is the acceptance's full first
  // megabyte even under --smoke: on a shorter slice the per-pass wall time
  // drops to ~1 ms and timer jitter swamps the effect being measured.
  const std::string_view cold_input =
      std::string_view(full).substr(0, std::min<size_t>(full.size(), 1 << 20));
  const tagger::TagSink sink = [](const tagger::Tag&) { return true; };
  auto time_pass = [&](const core::CompiledTagger& t) {
    const auto t0 = std::chrono::steady_clock::now();
    t.Tag(cold_input, sink);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return cold_input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  };
  // Cold is measurable exactly once per loaded tagger, so each repetition
  // is one adjacent cold/warm pair and the ratio is the median of the
  // per-pair ratios — adjacency cancels host-throughput drift within a
  // pair (same trick as the attribution bench), where a global
  // median(cold)/median(warm) would compare passes seconds apart.
  const int reps = smoke ? 11 : 15;
  std::vector<double> cold, warm, ratios;
  for (int r = 0; r < reps; ++r) {
    core::CompiledTagger fresh =
        ValueOrDie(core::CompiledTagger::LoadArtifact(path), "artifact load");
    const double c = time_pass(fresh);
    time_pass(fresh);  // finish warming the runtime cache
    const double w = time_pass(fresh);
    cold.push_back(c);
    warm.push_back(w);
    ratios.push_back(c / w);
  }
  std::sort(cold.begin(), cold.end());
  std::sort(warm.begin(), warm.end());
  std::sort(ratios.begin(), ratios.end());
  const double cold_mbps = cold[cold.size() / 2];
  const double warm_mbps = warm[warm.size() / 2];
  const double coldstart_ratio = ratios[ratios.size() / 2];
  std::remove(path.c_str());

  std::printf(
      "\nArtifact cold start (lazy-dfa x1, %zu KB, AOT budget %u)\n"
      "  compile+bake %.1f ms, load %.2f ms (%.0fx), artifact %zu bytes\n"
      "  first pass %.1f MB/s, warm %.1f MB/s, cold/warm %.3f "
      "(acceptance >= 0.9)\n",
      cold_input.size() >> 10, opt.tagger.aot_state_budget, compile_secs * 1e3,
      load_secs * 1e3, load_speedup, bytes.size(), cold_mbps, warm_mbps,
      coldstart_ratio);

  reg.GetGauge("cfgtag_bench_artifact_compile_seconds",
               "Wall time of the cache-miss path: compile the XML-RPC "
               "grammar from source and bake the AOT table")
      ->Set(compile_secs);
  reg.GetGauge("cfgtag_bench_artifact_load_seconds",
               "Wall time to mmap, validate and bind the artifact (best of "
               "several)")
      ->Set(load_secs);
  reg.GetGauge("cfgtag_bench_artifact_load_speedup",
               "Compile wall time over artifact load wall time (CI gate: "
               ">= 10)")
      ->Set(load_speedup);
  reg.GetGauge("cfgtag_bench_artifact_bytes",
               "Size of the serialized lazy-DFA artifact")
      ->Set(static_cast<double>(bytes.size()));
  reg.GetGauge("cfgtag_bench_artifact_coldstart_mbps{phase=\"cold\"}",
               "Fresh-session first-pass MB/s out of the baked AOT table")
      ->Set(cold_mbps);
  reg.GetGauge("cfgtag_bench_artifact_coldstart_mbps{phase=\"warm\"}",
               "Same tagger steady-state MB/s after the runtime cache "
               "filled")
      ->Set(warm_mbps);
  reg.GetGauge("cfgtag_bench_artifact_coldstart_ratio",
               "Cold first-pass over warm throughput with baked AOT "
               "(acceptance >= 0.9; CI gate >= 0.85 for scheduler noise)")
      ->Set(coldstart_ratio);
}

// Acceptance gauge for the attribution hot path: the fused engine tags the
// same resync stream with per-token attribution off, then on, and the
// slowdown lands in bench_metrics.json as cfgtag_bench_attr_overhead_pct
// alongside cfgtag_bench_attr_mbps{attribution="off"/"on"}. The budget is
// < 2% sequential; the gauge is the paper trail, printed but not CI-gated
// (single-run timing on shared CI runners is too noisy to gate on).
void RecordAttributionOverhead(bool smoke) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string& full = Workload();
  // A deliberately small slice: ~4 ms legs are short enough that a noisy
  // neighbour's burst poisons one leg's best-of instead of a whole block
  // of pairs, and the pair count (not the leg length) buys the precision.
  const std::string_view input = std::string_view(full).substr(0, 64 << 10);

  const grammar::Grammar g = DuplicatedXmlRpc(4);
  tagger::TaggerOptions topt;
  topt.arm_mode = tagger::ArmMode::kResync;
  auto fused = ValueOrDie(tagger::FusedTagger::Create(&g, topt), "fused");

  // Sessions sample the attribution flag at Reset, and Run checks out a
  // freshly reset session, so flipping the flag between timings is enough.
  // Thread CPU time, not wall time: on a shared host a leg that loses the
  // CPU for a scheduler quantum would otherwise be charged the whole
  // preemption, which dwarfs the effect being measured.
  auto thread_seconds = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  };
  auto time_run = [&] {
    size_t tags = 0;
    const tagger::TagSink sink = [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    };
    const double t0 = thread_seconds();
    fused.Run(input, sink);
    const double t1 = thread_seconds();
    benchmark::DoNotOptimize(tags);
    const double secs = t1 - t0;
    return input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  };

  // Host throughput swings several percent over seconds on a shared
  // machine, so a single long off-then-on pair routinely reports noise as
  // overhead (or as a speedup). Instead: many *short* adjacent off/on
  // pairs — adjacency cancels drift within a pair, alternating which
  // config goes first keeps drift off one side, and the median of the
  // per-pair ratios rejects the bursts that poison best-of and means.
  // Each leg is itself a best-of-5 (even thread CPU time drifts with
  // frequency scaling and neighbour cache pressure; five tries make it
  // unlikely every sample of a leg landed inside the same burst).
  // Even the smoke count stays high: a handful of pairs is still hostage
  // to a single multi-second load burst spanning several of them; the
  // median needs tens of independent ratios to settle inside +-1%.
  const bool was_enabled = obs::AttributionTable::enabled();
  const int pairs = smoke ? 96 : 160;
  auto time_leg = [&] {
    double best = 0;
    for (int k = 0; k < 5; ++k) best = std::max(best, time_run());
    return best;
  };
  std::vector<double> ratios;
  double off_mbps = 0;
  double on_mbps = 0;
  time_run();  // warm up caches and the session pool outside the timings
  for (int r = 0; r < pairs; ++r) {
    double pair[2];  // [0] = off, [1] = on
    for (int leg = 0; leg < 2; ++leg) {
      const bool on = (leg == 0) == ((r & 1) != 0);
      obs::AttributionTable::set_enabled(on);
      pair[on ? 1 : 0] = time_leg();
    }
    ratios.push_back(pair[0] / pair[1]);
    off_mbps = std::max(off_mbps, pair[0]);
    on_mbps = std::max(on_mbps, pair[1]);
  }
  obs::AttributionTable::set_enabled(was_enabled);

  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  std::printf(
      "\nAttribution overhead (fused x4, %zu KB): off %.1f MB/s, on %.1f "
      "MB/s, overhead %.2f%% (budget < 2%%)\n",
      input.size() >> 10, off_mbps, on_mbps, overhead_pct);
  reg.GetGauge("cfgtag_bench_attr_mbps{attribution=\"off\"}",
               "Fused sequential MB/s with per-token attribution off")
      ->Set(off_mbps);
  reg.GetGauge("cfgtag_bench_attr_mbps{attribution=\"on\"}",
               "Fused sequential MB/s with per-token attribution on")
      ->Set(on_mbps);
  reg.GetGauge("cfgtag_bench_attr_overhead_pct",
               "Percent throughput lost to per-token attribution on the "
               "sequential fused path (budget: < 2)")
      ->Set(overhead_pct);
}

// Acceptance gauge for the resilience layer's disarmed cost: the same
// compiled tagger scans the same resync stream through the plain Tag()
// path and through TagWithControl() with a default (inert) ScanControl —
// infinite deadline, inert cancel token, 64 KiB check interval, fault
// injector disarmed. The difference is the whole price of the deadline/
// cancel/budget plumbing when nothing is armed; the CI release-bench lane
// gates it < 2% out of BENCH_10.json. Methodology is the attribution
// gauge's: short adjacent off/on pairs on thread CPU time, alternating
// order, median of per-pair ratios (see RecordAttributionOverhead).
void RecordResilienceOverhead(bool smoke) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string& full = Workload();
  const std::string_view input = std::string_view(full).substr(0, 64 << 10);

  grammar::Grammar g = DuplicatedXmlRpc(4);
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  opt.tagger.backend = tagger::TaggerBackend::kFused;
  auto tagger =
      ValueOrDie(core::CompiledTagger::Compile(std::move(g), opt), "compile");

  auto thread_seconds = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  };
  const core::resilience::ScanControl inert;
  auto time_run = [&](bool controlled) {
    size_t tags = 0;
    const tagger::TagSink sink = [&tags](const tagger::Tag&) {
      ++tags;
      return true;
    };
    const double t0 = thread_seconds();
    if (controlled) {
      (void)tagger.TagWithControl(input, sink, inert);
    } else {
      tagger.Tag(input, sink);
    }
    const double t1 = thread_seconds();
    benchmark::DoNotOptimize(tags);
    const double secs = t1 - t0;
    return input.size() / 1e6 / (secs > 0 ? secs : 1e-9);
  };

  const int pairs = smoke ? 96 : 160;
  auto time_leg = [&](bool controlled) {
    double best = 0;
    for (int k = 0; k < 5; ++k) best = std::max(best, time_run(controlled));
    return best;
  };
  std::vector<double> ratios;
  double off_mbps = 0;
  double on_mbps = 0;
  time_run(false);  // warm up caches and the session pool
  time_run(true);
  for (int r = 0; r < pairs; ++r) {
    double pair[2];  // [0] = plain Tag, [1] = TagWithControl
    for (int leg = 0; leg < 2; ++leg) {
      const bool on = (leg == 0) == ((r & 1) != 0);
      pair[on ? 1 : 0] = time_leg(on);
    }
    ratios.push_back(pair[0] / pair[1]);
    off_mbps = std::max(off_mbps, pair[0]);
    on_mbps = std::max(on_mbps, pair[1]);
  }

  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  std::printf(
      "\nResilience overhead (fused x4, %zu KB): plain %.1f MB/s, "
      "controlled %.1f MB/s, overhead %.2f%% (budget < 2%%)\n",
      input.size() >> 10, off_mbps, on_mbps, overhead_pct);
  reg.GetGauge("cfgtag_bench_resilience_mbps{control=\"off\"}",
               "Fused sequential MB/s through the plain Tag() path")
      ->Set(off_mbps);
  reg.GetGauge("cfgtag_bench_resilience_mbps{control=\"on\"}",
               "Fused sequential MB/s through TagWithControl() with an "
               "inert default ScanControl")
      ->Set(on_mbps);
  reg.GetGauge("cfgtag_bench_resilience_overhead_pct",
               "Percent throughput lost to the disarmed resilience layer "
               "(inert ScanControl vs plain Tag; CI gate: < 2)")
      ->Set(overhead_pct);
}

}  // namespace
}  // namespace cfgtag::bench

// Like BENCHMARK_MAIN(), plus a machine-readable trail: the default
// metrics registry — populated by the instrumented Tag/Compile/Implement
// paths the benchmarks exercised — is dumped to bench_metrics.json so
// BENCH_*.json trajectories carry per-stage cost attribution.
int main(int argc, char** argv) {
  // --smoke (ours, stripped before google-benchmark sees the args) shrinks
  // the backend comparison to a CI-sized workload; pair it with a
  // --benchmark_filter to keep the google-benchmark section short too.
  const bool smoke = cfgtag::bench::StripSmokeFlag(&argc, argv);
  // --stats-port serves /metrics et al. over loopback for the life of the
  // run (and turns attribution on); --stats-hold-seconds keeps the process
  // alive after the bench body so CI can scrape before exit.
  const int stats_port =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-port", -1);
  const int stats_hold =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-hold-seconds", 0);
  cfgtag::bench::MaybeServeStats(stats_port);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cfgtag::obs::MetricsRegistry::Default()
      .GetGauge("cfgtag_bench_workload_bytes",
                "Bytes of the generated XML-RPC workload stream")
      ->Set(static_cast<double>(cfgtag::bench::Workload().size()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cfgtag::bench::RecordBackendComparison(smoke);
  cfgtag::bench::RecordSimdComparison(smoke);
  cfgtag::bench::RecordArtifactComparison(smoke);
  cfgtag::bench::RecordAttributionOverhead(smoke);
  cfgtag::bench::RecordResilienceOverhead(smoke);
  cfgtag::bench::WriteMetricsJson("bench_metrics.json");
  // The consolidated perf baseline the CI release-bench gate parses: the
  // same registry snapshot under the tracked BENCH_4.json name (backend
  // MB/s and speedup gauges included). BENCH_7.json is the same snapshot
  // re-baselined after the concurrency pass (seqlock payload in atomic
  // words, lifecycle-locked stats server), and BENCH_8.json after the SIMD
  // kernel layer (scalar-vs-vector dispatch gauges included), so the files
  // bracket each pass's throughput effect. BENCH_9.json re-baselines after
  // the artifact layer and carries the artifact load-speedup and AOT
  // cold-start gauges its CI gate parses.
  cfgtag::bench::WriteMetricsJson("BENCH_4.json");
  cfgtag::bench::WriteMetricsJson("BENCH_7.json");
  cfgtag::bench::WriteMetricsJson("BENCH_8.json");
  cfgtag::bench::WriteMetricsJson("BENCH_9.json");
  // BENCH_10.json re-baselines after the service-resilience layer and
  // carries the disarmed-control overhead gauge its CI gate parses.
  cfgtag::bench::WriteMetricsJson("BENCH_10.json");
  cfgtag::bench::HoldStats(stats_hold);
  return 0;
}
