// Regenerates paper Figure 15: frequency versus the number of pattern
// bytes in the grammar on the Virtex 4 LX200, annotated with LUTs/byte at
// each point (the figure's data labels). We sweep the duplication factor
// over a finer grid than the paper's five points and print the series plus
// the paper's reference points for comparison.

#include <cstdio>

#include "bench/bench_util.h"
#include "rtl/device.h"

namespace cfgtag::bench {
namespace {

void Run() {
  std::printf(
      "Figure 15: frequency vs. number of pattern bytes (Virtex4 LX200)\n\n");
  std::printf("%8s %8s %10s %9s %9s   %s\n", "Copies", "Bytes", "Freq(MHz)",
              "LUTs/Byte", "MaxFanout", "bar");

  const rtl::Device device = rtl::Virtex4LX200();
  for (int copies : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    core::CompiledTagger tagger = CompileXmlRpc(copies);
    auto report = ValueOrDie(tagger.Implement(device), "Implement");
    std::string bar(static_cast<size_t>(report.timing.fmax_mhz / 10.0), '#');
    std::printf("%8d %8zu %10.0f %9.2f %9u   %s\n", copies,
                report.area.pattern_bytes, report.timing.fmax_mhz,
                report.area.luts_per_byte, report.timing.worst_net_fanout,
                bar.c_str());
  }

  std::printf(
      "\nPaper reference points: (300 B, 533 MHz, 1.01 L/B) (600, 497, "
      "0.88)\n(1200, 445, 0.81) (2100, 318, 0.79) (3000, 316, 0.77)\n");
  std::printf(
      "\nExpected shape: frequency decreases monotonically because the\n"
      "decoded-character fanout (MaxFanout column) grows linearly with\n"
      "pattern bytes while routing delay grows with its square root; \n"
      "LUTs/Byte falls as decoder and encoder logic amortize.\n");
}

}  // namespace
}  // namespace cfgtag::bench

int main() {
  cfgtag::bench::Run();
  return 0;
}
