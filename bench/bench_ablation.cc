// Ablations of the design choices the paper calls out:
//
//   1. §3.4  pipelined OR-tree index encoder vs. the naive single-stage
//            encoder ("almost always the critical path ... in a naive
//            implementation").
//   2. Fig.7 longest-match look-ahead on/off (area cost and tag noise).
//   3. §5.2  decoder replication / fan-out balancing — the paper's proposed
//            fix for the routing-delay wall, implemented and measured.

#include <cstdio>

#include "bench/bench_util.h"
#include "rtl/device.h"
#include "xmlrpc/message_gen.h"

namespace cfgtag::bench {
namespace {

void EncoderAblation() {
  std::printf(
      "Ablation 1: index encoder structure (Virtex4 LX200)\n\n"
      "%8s %8s | %10s %9s | %10s %9s\n",
      "Copies", "Tokens", "pipe MHz", "pipe lat", "naive MHz", "naive lat");
  for (int copies : {1, 4, 10}) {
    hwgen::HwOptions pipelined;
    hwgen::HwOptions naive;
    naive.pipelined_encoder = false;

    core::CompiledTagger a = CompileXmlRpc(copies, pipelined);
    core::CompiledTagger b = CompileXmlRpc(copies, naive);
    auto ra = ValueOrDie(a.Implement(rtl::Virtex4LX200()), "implement");
    auto rb = ValueOrDie(b.Implement(rtl::Virtex4LX200()), "implement");
    std::printf("%8d %8zu | %10.0f %9d | %10.0f %9d\n", copies,
                a.grammar().NumTokens(), ra.timing.fmax_mhz,
                a.hardware().index_latency, rb.timing.fmax_mhz,
                b.hardware().index_latency);
  }
  std::printf(
      "\nExpected shape (paper §3.4: a CASE-statement encoder \"is almost\n"
      "always the critical path of the entire system\"): the naive priority\n"
      "chain's linear depth crushes Fmax as the token count grows; the\n"
      "pipelined OR tree holds Fmax at the routing-limited value and pays\n"
      "ceil(log2 N) cycles of latency.\n\n");
}

void LongestMatchAblation() {
  std::printf("Ablation 2: Fig. 7 longest-match look-ahead\n\n");
  xmlrpc::MessageGenerator gen({}, 17);
  const std::string msg = gen.GenerateStream(20);

  hwgen::HwOptions on;
  hwgen::HwOptions off;
  off.tagger.longest_match = false;

  core::CompiledTagger with = CompileXmlRpc(1, on);
  core::CompiledTagger without = CompileXmlRpc(1, off);
  auto r_with = ValueOrDie(with.Implement(rtl::Virtex4LX200()), "implement");
  auto r_without =
      ValueOrDie(without.Implement(rtl::Virtex4LX200()), "implement");

  std::printf("%22s | %10s %10s\n", "", "look-ahead", "disabled");
  std::printf("%22s | %10zu %10zu\n", "LUTs", r_with.area.luts,
              r_without.area.luts);
  std::printf("%22s | %10zu %10zu\n", "tags on 20 messages",
              with.Tag(msg).size(), without.Tag(msg).size());
  std::printf(
      "\nExpected shape: without the look-ahead every cycle of a +/* run\n"
      "asserts a detection (paper: \"the logic would indicate detection at\n"
      "every cycle\"), inflating the tag stream; the look-ahead costs a\n"
      "modest number of LUTs.\n\n");
}

void ReplicationAblation() {
  std::printf(
      "Ablation 3: decoder replication / fanout balancing (paper "
      "§5.2,\n3000-byte grammar, Virtex4 LX200)\n\n");
  std::printf("%12s | %10s %10s %9s %9s\n", "threshold", "Fmax(MHz)",
              "maxfanout", "LUTs", "FFs");

  for (uint32_t threshold : {0u, 256u, 128u, 64u, 32u}) {
    hwgen::HwOptions opt;
    opt.decoder_replication = threshold != 0;
    opt.replication_threshold = threshold == 0 ? 1 : threshold;
    core::CompiledTagger tagger = CompileXmlRpc(10, opt);
    auto report = ValueOrDie(tagger.Implement(rtl::Virtex4LX200()),
                             "implement");
    const std::string label =
        threshold == 0 ? "off" : std::to_string(threshold);
    std::printf("%12s | %10.0f %10u %9zu %9zu\n", label.c_str(),
                report.timing.fmax_mhz, report.timing.worst_net_fanout,
                report.area.luts, report.area.ffs);
  }
  std::printf(
      "\nExpected shape: tighter thresholds bound the decoded-bit fanout\n"
      "and recover clock frequency at the cost of replica registers —\n"
      "the §5.2 future-work trade-off, quantified.\n");
}

void SynthesisOptimizationAblation() {
  std::printf(
      "\nAblation 5: synthesis cleanup (CSE + constant folding + dead-logic\n"
      "removal) before mapping, Virtex4 LX200. The Table 1 calibration uses\n"
      "the raw generated structure; this shows what a synthesis front end\n"
      "recovers.\n\n");
  std::printf("%8s | %9s %9s %8s | %10s %10s\n", "Copies", "raw LUT",
              "opt LUT", "saved", "raw MHz", "opt MHz");
  for (int copies : {1, 4, 10}) {
    core::CompiledTagger tagger = CompileXmlRpc(copies);
    auto raw = ValueOrDie(tagger.Implement(rtl::Virtex4LX200(), false),
                          "implement");
    auto opt = ValueOrDie(tagger.Implement(rtl::Virtex4LX200(), true),
                          "implement");
    std::printf("%8d | %9zu %9zu %7.1f%% | %10.0f %10.0f\n", copies,
                raw.area.luts, opt.area.luts,
                100.0 * (raw.area.luts - opt.area.luts) /
                    static_cast<double>(raw.area.luts),
                raw.timing.fmax_mhz, opt.timing.fmax_mhz);
  }
  std::printf(
      "\nExpected shape: CSE saves area but *lowers* Fmax — shared gates\n"
      "concentrate fan-out on fewer nets, the very effect the paper's §5.2\n"
      "replication idea works against. The generator intentionally leaves\n"
      "duplication in place (speed over area), like the paper's design.\n");
}

void MultiByteAblation() {
  std::printf(
      "\nAblation 4: bytes per clock cycle (paper §5.2 \"scaling the design "
      "to\nprocess 32-bits or 64-bits per clock cycle\", XML-RPC grammar,\n"
      "Virtex4 LX200)\n\n");
  std::printf("%8s | %10s %10s %9s %9s\n", "bytes/clk", "Fmax(MHz)",
              "BW(Gbps)", "LUTs", "FFs");
  for (int w : {1, 2, 4}) {
    hwgen::HwOptions opt;
    opt.bytes_per_cycle = w;
    core::CompiledTagger tagger = CompileXmlRpc(1, opt);
    auto report = ValueOrDie(tagger.Implement(rtl::Virtex4LX200()),
                             "implement");
    std::printf("%8d | %10.0f %10.2f %9zu %9zu\n", w, report.timing.fmax_mhz,
                report.bandwidth_gbps, report.area.luts, report.area.ffs);
  }
  std::printf(
      "\nExpected shape: the W-deep combinational transition ladder costs\n"
      "clock frequency and area, but net bandwidth still rises — the\n"
      "trade-off the paper anticipated for its future multi-byte design.\n");
}

}  // namespace
}  // namespace cfgtag::bench

int main() {
  cfgtag::bench::EncoderAblation();
  cfgtag::bench::LongestMatchAblation();
  cfgtag::bench::ReplicationAblation();
  cfgtag::bench::MultiByteAblation();
  cfgtag::bench::SynthesisOptimizationAblation();
  return 0;
}
