// Quantifies the paper's §3.1 design decision: collapsing the push-down
// automaton into a finite automaton (Fig. 2) makes the hardware accept a
// *superset* of the grammar. On conforming inputs the tag stream matches
// the true parser's; on non-conforming inputs the hardware keeps tagging
// where a true parser stops.
//
// Workloads: the paper's balanced-parenthesis grammar (Fig. 1) and XML-RPC.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "tagger/ll_parser.h"
#include "xmlrpc/message_gen.h"

namespace cfgtag::bench {
namespace {

void BalancedParens() {
  auto g = grammar::ParseGrammar(R"grm(
%%
e: "(" e ")" | "0";
%%
)grm");
  CheckOk(g.status(), "parens grammar");
  grammar::Grammar g2 = g->Clone();
  auto parser = ValueOrDie(tagger::PredictiveParser::Create(&g2, {}),
                           "parser");
  auto tagger = ValueOrDie(
      core::CompiledTagger::Compile(std::move(g).value()), "compile");

  std::printf(
      "Balanced parentheses (paper Fig. 1/2: PDA collapsed to FSA)\n\n");
  std::printf("%8s | %10s %12s | %12s %12s\n", "depth", "accepted",
              "tags==LL", "rejected", "FSA tags");

  Rng rng(7);
  for (int depth : {1, 2, 4, 8, 16}) {
    // Balanced input: ('^depth' 0 ')'^depth; unbalanced: drop one ')'.
    std::string balanced(depth, '(');
    balanced += "0";
    balanced.append(depth, ')');
    std::string unbalanced = balanced.substr(0, balanced.size() - 1);

    auto ll = parser.Parse(balanced);
    CheckOk(ll.status(), "parse balanced");
    auto fsa = tagger.Tag(balanced);
    const bool tags_equal = fsa.size() == ll->size();

    const bool rejected = !parser.Accepts(unbalanced);
    auto fsa_unbalanced = tagger.Tag(unbalanced);
    std::printf("%8d | %10s %12s | %12s %12zu\n", depth, "yes",
                tags_equal ? "yes" : "NO", rejected ? "yes" : "NO",
                fsa_unbalanced.size());
  }
  std::printf(
      "\nThe FSA tags all %s tokens of the unbalanced input although the\n"
      "true parser rejects it — the §3.1 superset behaviour (harmless under\n"
      "the paper's conforming-input assumption).\n\n",
      "2*depth");
}

void XmlRpcSuperset() {
  auto g = xmlrpc::XmlRpcGrammar();
  CheckOk(g.status(), "grammar");
  grammar::Grammar g2 = g->Clone();
  auto parser = ValueOrDie(tagger::PredictiveParser::Create(&g2, {}),
                           "parser");
  auto tagger = ValueOrDie(
      core::CompiledTagger::Compile(std::move(g).value()), "compile");

  xmlrpc::MessageGenerator gen({}, 5);
  size_t ll_total = 0, hw_total = 0, covered = 0;
  int corrupted_accepted_by_ll = 0, corrupted_tagged_by_hw = 0;
  Rng rng(13);
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    const std::string msg = gen.Generate();
    auto ll = parser.Parse(msg);
    CheckOk(ll.status(), "parse");
    auto hw = tagger.Tag(msg);
    ll_total += ll->size();
    hw_total += hw.size();
    for (const auto& t : *ll) {
      covered += std::find(hw.begin(), hw.end(), t) != hw.end();
    }

    // Corrupt the message: truncate after a random tag boundary.
    std::string corrupted = msg.substr(0, msg.size() / 2);
    corrupted_accepted_by_ll += parser.Accepts(corrupted);
    corrupted_tagged_by_hw += !tagger.Tag(corrupted).empty();
  }
  std::printf("XML-RPC superset check (%d generated messages)\n\n",
              kMessages);
  std::printf("  LL parser tags:          %zu\n", ll_total);
  std::printf("  hardware tags:           %zu\n", hw_total);
  std::printf("  LL tags covered by HW:   %zu (%.1f%%)\n", covered,
              100.0 * covered / static_cast<double>(ll_total));
  std::printf("  HW extra tags:           %zu (%.1f%% overhead)\n",
              hw_total - covered,
              100.0 * (hw_total - covered) / static_cast<double>(ll_total));
  std::printf("  truncated msgs LL-accepted: %d / %d\n",
              corrupted_accepted_by_ll, kMessages);
  std::printf("  truncated msgs HW-tagged:   %d / %d\n",
              corrupted_tagged_by_hw, kMessages);
}

}  // namespace
}  // namespace cfgtag::bench

int main() {
  cfgtag::bench::BalancedParens();
  cfgtag::bench::XmlRpcSuperset();
  return 0;
}
