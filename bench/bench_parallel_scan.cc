// Parallel batch-scan engine vs the sequential scan path: the same
// ContextFilter scanning the same traffic, once on one thread and once
// fanned across the ScanEngine's worker pool (independent streams, and one
// large stream sharded at resync delimiter boundaries). Verifies the
// engine is byte-identical to the sequential path before timing it, and
// records the speedups plus the whole metrics registry in
// bench_metrics.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <thread>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"
#include "nids/scan_engine.h"
#include "obs/metrics.h"

namespace cfgtag::bench {
namespace {

constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

std::vector<nids::Rule> MakeRules() {
  std::vector<nids::Rule> rules = {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"DROPPER", "cmd.exe", "PATH", 2},
      {"SHELL", "bin/sh", "PATH", 2},
      {"GLOBAL-TOKEN", "forbidden", "", 1},
  };
  Rng rng(2006);
  while (rules.size() < 16) {
    rules.push_back({"SYN-" + std::to_string(rules.size()),
                     "sig" + rng.NextString(6, "abcdef0123456789"),
                     "PATH", 1});
  }
  return rules;
}

// Mixed traffic: mostly benign requests, some with signature strings in
// the path (true alerts) and some with decoys in the header value.
std::string MakeTraffic(const std::vector<nids::Rule>& rules, int messages,
                        uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < messages; ++i) {
    const size_t roll = rng.NextIndex(10);
    out += "REQ /";
    if (roll == 0) {
      out += "a/" + rules[rng.NextIndex(rules.size())].pattern;
    } else {
      out += "static/" + rng.NextString(10, "abcdefgh") + ".html";
    }
    out += " HDR agent-";
    if (roll == 1) out += rules[rng.NextIndex(rules.size())].pattern + "-";
    out += rng.NextString(6, "xyz0189");
    out += " END\n";
  }
  return out;
}

double Time(const std::function<void()>& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

void Run(bool smoke) {
  auto g = grammar::ParseGrammar(kProtocol);
  CheckOk(g.status(), "protocol grammar");
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  auto filter = ValueOrDie(
      nids::ContextFilter::Create(g->Clone(), MakeRules(), opt), "filter");
  // The same rules and grammar behind the fused tagging backend.
  opt.tagger.backend = tagger::TaggerBackend::kFused;
  auto fused_filter = ValueOrDie(
      nids::ContextFilter::Create(g->Clone(), MakeRules(), opt),
      "fused filter");
  // And the lazy-DFA backend.
  opt.tagger.backend = tagger::TaggerBackend::kLazyDfa;
  auto lazy_filter = ValueOrDie(
      nids::ContextFilter::Create(std::move(g).value(), MakeRules(), opt),
      "lazy filter");

  // Batch workload: independent streams of a few hundred messages each.
  const int num_streams = smoke ? 8 : 64;
  const int msgs_per_stream = smoke ? 100 : 600;
  std::vector<std::string> stream_storage;
  std::vector<std::string_view> streams;
  size_t batch_bytes = 0;
  for (int i = 0; i < num_streams; ++i) {
    stream_storage.push_back(MakeTraffic(filter.rules(), msgs_per_stream,
                                         1000 + static_cast<uint64_t>(i)));
    batch_bytes += stream_storage.back().size();
  }
  for (const std::string& s : stream_storage) streams.push_back(s);

  // Sequential reference, also the correctness baseline.
  std::vector<std::vector<nids::Alert>> reference(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    reference[i] = filter.Scan(streams[i]);
    if (fused_filter.Scan(streams[i]) != reference[i]) {
      std::fprintf(stderr, "FATAL fused backend mismatch on stream %zu\n",
                   i);
      std::abort();
    }
    if (lazy_filter.Scan(streams[i]) != reference[i]) {
      std::fprintf(stderr, "FATAL lazy backend mismatch on stream %zu\n",
                   i);
      std::abort();
    }
  }

  const int kIters = smoke ? 1 : 5;
  const double seq_secs = Time(
      [&] {
        for (const std::string_view s : streams) {
          auto alerts = filter.Scan(s);
          if (alerts.empty() && !s.empty()) std::abort();
        }
      },
      kIters);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const unsigned cores = std::thread::hardware_concurrency();
  reg.GetGauge("cfgtag_bench_hardware_threads",
               "std::thread::hardware_concurrency() on the bench host")
      ->Set(cores);
  std::printf(
      "Parallel batch scan: %zu streams, %.1f MB total, %u hardware "
      "thread(s)\n"
      "(speedup is bounded by hardware threads; on a 1-core host the\n"
      " expected result is ~1.00x, i.e. no engine overhead)\n\n",
      streams.size(), batch_bytes / 1e6, cores);
  // Sequential fused backend over the same batch: the single-thread
  // speedup lever, orthogonal to the engine's multi-thread one.
  const double fused_seq_secs = Time(
      [&] {
        for (const std::string_view s : streams) {
          auto alerts = fused_filter.Scan(s);
          if (alerts.empty() && !s.empty()) std::abort();
        }
      },
      kIters);
  // And the lazy-DFA backend, which amortizes its transition cache across
  // the whole batch via the session pool.
  const double lazy_seq_secs = Time(
      [&] {
        for (const std::string_view s : streams) {
          auto alerts = lazy_filter.Scan(s);
          if (alerts.empty() && !s.empty()) std::abort();
        }
      },
      kIters);
  reg.GetGauge("cfgtag_bench_scan_backend_mbps{backend=\"functional\"}",
               "Sequential batch scan MB/s by tagging backend")
      ->Set(batch_bytes / 1e6 / seq_secs);
  reg.GetGauge("cfgtag_bench_scan_backend_mbps{backend=\"fused\"}",
               "Sequential batch scan MB/s by tagging backend")
      ->Set(batch_bytes / 1e6 / fused_seq_secs);
  reg.GetGauge("cfgtag_bench_scan_backend_mbps{backend=\"lazy_dfa\"}",
               "Sequential batch scan MB/s by tagging backend")
      ->Set(batch_bytes / 1e6 / lazy_seq_secs);

  std::printf("%10s | %12s | %10s\n", "threads", "MB/s", "speedup");
  std::printf("%10s | %12.1f | %10s\n", "seq",
              batch_bytes / 1e6 / seq_secs, "1.00x");
  std::printf("%10s | %12.1f | %9.2fx\n", "seq-fused",
              batch_bytes / 1e6 / fused_seq_secs,
              seq_secs / fused_seq_secs);
  std::printf("%10s | %12.1f | %9.2fx\n", "seq-lazy",
              batch_bytes / 1e6 / lazy_seq_secs,
              seq_secs / lazy_seq_secs);
  for (int threads : {1, 2, 4, 8}) {
    nids::ScanEngineOptions eopt;
    eopt.num_threads = threads;
    nids::ScanEngine engine(&filter, eopt);
    // Equivalence before timing: the engine must be byte-identical.
    auto results = engine.ScanBatch(streams);
    for (size_t i = 0; i < streams.size(); ++i) {
      if (results[i].alerts != reference[i]) {
        std::fprintf(stderr, "FATAL batch mismatch on stream %zu\n", i);
        std::abort();
      }
    }
    const double secs =
        Time([&] { auto r = engine.ScanBatch(streams); }, kIters);
    const double speedup = seq_secs / secs;
    std::printf("%10d | %12.1f | %9.2fx\n", threads,
                batch_bytes / 1e6 / secs, speedup);
    reg.GetGauge("cfgtag_bench_batch_speedup{threads=\"" +
                     std::to_string(threads) + "\"}",
                 "ScanBatch speedup over the sequential loop")
        ->Set(speedup);
  }

  // Sharded single-stream workload: one ~4 MB stream (smoke: ~200 KB).
  const std::string big = MakeTraffic(filter.rules(), smoke ? 5000 : 100000, 9);
  const auto big_reference = filter.Scan(big);
  const double big_seq_secs =
      Time([&] { auto r = filter.Scan(big); }, kIters);
  std::printf(
      "\nSharded single stream: %.1f MB, resync delimiter boundaries\n\n",
      big.size() / 1e6);
  std::printf("%10s | %12s | %10s\n", "threads", "MB/s", "speedup");
  std::printf("%10s | %12.1f | %10s\n", "seq",
              big.size() / 1e6 / big_seq_secs, "1.00x");
  for (int threads : {1, 2, 4, 8}) {
    nids::ScanEngineOptions eopt;
    eopt.num_threads = threads;
    eopt.min_shard_bytes = 1 << 16;
    nids::ScanEngine engine(&filter, eopt);
    const auto sharded = engine.ScanStream(big);
    if (sharded.alerts != big_reference) {
      std::fprintf(stderr, "FATAL sharded mismatch at %d threads\n",
                   threads);
      std::abort();
    }
    const double secs =
        Time([&] { auto r = engine.ScanStream(big); }, kIters);
    const double speedup = big_seq_secs / secs;
    std::printf("%10d | %12.1f | %9.2fx\n", threads,
                big.size() / 1e6 / secs, speedup);
    reg.GetGauge("cfgtag_bench_sharded_speedup{threads=\"" +
                     std::to_string(threads) + "\"}",
                 "ScanStream speedup over one sequential Scan")
        ->Set(speedup);
  }

  WriteMetricsJson("bench_metrics.json");
}

}  // namespace
}  // namespace cfgtag::bench

int main(int argc, char** argv) {
  const bool smoke = cfgtag::bench::StripSmokeFlag(&argc, argv);
  // --stats-port serves the observability endpoints over loopback for the
  // life of the run (and switches attribution on); --stats-hold-seconds
  // leaves a scrape window after the bench body.
  const int stats_port =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-port", -1);
  const int stats_hold =
      cfgtag::bench::StripIntFlag(&argc, argv, "--stats-hold-seconds", 0);
  cfgtag::bench::MaybeServeStats(stats_port);
  cfgtag::bench::Run(smoke);
  cfgtag::bench::HoldStats(stats_hold);
  return 0;
}
