// The paper's motivating claim (§1): naive pattern searches "do not
// consider the context of the text in the data [and] are susceptible to
// false positive identifications", while the CFG-based tagger reports a
// token only in its grammatical position.
//
// Experiment: XML-RPC messages whose *method* is neutral but whose string
// payloads embed service names with probability `decoy_rate`. A
// context-free Aho-Corasick scanner (the naive matcher) flags the decoys;
// the tagger must not. We sweep the decoy rate and report per-message
// false-positive rates.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "tagger/naive_matcher.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/router.h"

namespace cfgtag::bench {
namespace {

void Run() {
  const std::vector<std::string> services = {"deposit", "withdraw", "buy",
                                             "sell", "price", "acctinfo"};
  xmlrpc::RouterConfig config;
  for (size_t i = 0; i < services.size(); ++i) {
    config.services.push_back({services[i], static_cast<int>(i + 1)});
  }
  config.default_port = 0;
  auto router = ValueOrDie(xmlrpc::XmlRpcRouter::Create(config), "router");
  tagger::NaiveMatcher naive(services);

  constexpr int kMessages = 200;
  std::printf(
      "False positives: context-free matcher vs. CFG token tagger\n"
      "(%d XML-RPC messages per row, neutral method names, service names\n"
      "embedded in string payloads)\n\n",
      kMessages);
  std::printf("%12s | %14s %14s | %14s %14s\n", "decoy rate",
              "naive FP msgs", "naive FP hits", "tagger FP msgs",
              "tagger FP hits");

  for (double decoy_rate : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    xmlrpc::MessageGenOptions opt;
    opt.adversarial = decoy_rate > 0.0;
    opt.method_names = services;
    xmlrpc::MessageGenerator gen(opt, /*seed=*/1234);

    int naive_fp_msgs = 0, naive_fp_hits = 0;
    int tagger_fp_msgs = 0, tagger_fp_hits = 0;
    Rng rng(99);
    for (int m = 0; m < kMessages; ++m) {
      // Neutral method: any service hit is by definition a false positive.
      std::string msg = gen.GenerateWithMethod("neutralmethod");
      if (!(rng.NextDouble() < decoy_rate)) {
        // Strip decoys for this sample by regenerating without adversarial
        // payloads at the same arrival slot.
        xmlrpc::MessageGenOptions clean = opt;
        clean.adversarial = false;
        xmlrpc::MessageGenerator g2(clean, 1234 + m);
        msg = g2.GenerateWithMethod("neutralmethod");
      }

      const size_t naive_hits = naive.Matches(msg).size();
      naive_fp_hits += static_cast<int>(naive_hits);
      naive_fp_msgs += naive_hits > 0;

      int svc_tags = 0;
      if (router.RouteTags(router.tagger().Tag(msg)) != 0) svc_tags++;
      tagger_fp_hits += svc_tags;
      tagger_fp_msgs += svc_tags > 0;
    }
    std::printf("%11.0f%% | %14d %14d | %14d %14d\n", decoy_rate * 100,
                naive_fp_msgs, naive_fp_hits, tagger_fp_msgs,
                tagger_fp_hits);
  }
  std::printf(
      "\nExpected shape: the naive matcher's false positives grow with the\n"
      "decoy rate; the tagger's stay at zero because service tokens are\n"
      "armed only inside <methodName> context.\n");
}

}  // namespace
}  // namespace cfgtag::bench

int main() {
  cfgtag::bench::Run();
  return 0;
}
