file(REMOVE_RECURSE
  "CMakeFiles/xmlrpc_router.dir/xmlrpc_router.cpp.o"
  "CMakeFiles/xmlrpc_router.dir/xmlrpc_router.cpp.o.d"
  "xmlrpc_router"
  "xmlrpc_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrpc_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
