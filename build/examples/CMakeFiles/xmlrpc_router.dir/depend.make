# Empty dependencies file for xmlrpc_router.
# This may be replaced when dependencies are built.
