file(REMOVE_RECURSE
  "CMakeFiles/nids_filter.dir/nids_filter.cpp.o"
  "CMakeFiles/nids_filter.dir/nids_filter.cpp.o.d"
  "nids_filter"
  "nids_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nids_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
