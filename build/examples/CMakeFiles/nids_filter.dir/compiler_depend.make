# Empty compiler generated dependencies file for nids_filter.
# This may be replaced when dependencies are built.
