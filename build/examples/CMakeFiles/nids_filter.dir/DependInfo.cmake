
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nids_filter.cpp" "examples/CMakeFiles/nids_filter.dir/nids_filter.cpp.o" "gcc" "examples/CMakeFiles/nids_filter.dir/nids_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cfgtag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlrpc/CMakeFiles/cfgtag_xmlrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/cfgtag_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tagger/CMakeFiles/cfgtag_tagger.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/cfgtag_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/cfgtag_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/cfgtag_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cfgtag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nids/CMakeFiles/cfgtag_nids.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
