# Empty compiler generated dependencies file for english_tagger.
# This may be replaced when dependencies are built.
