file(REMOVE_RECURSE
  "CMakeFiles/english_tagger.dir/english_tagger.cpp.o"
  "CMakeFiles/english_tagger.dir/english_tagger.cpp.o.d"
  "english_tagger"
  "english_tagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/english_tagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
