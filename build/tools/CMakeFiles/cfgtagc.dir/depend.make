# Empty dependencies file for cfgtagc.
# This may be replaced when dependencies are built.
