file(REMOVE_RECURSE
  "CMakeFiles/cfgtagc.dir/cfgtagc.cc.o"
  "CMakeFiles/cfgtagc.dir/cfgtagc.cc.o.d"
  "cfgtagc"
  "cfgtagc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtagc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
