# Empty compiler generated dependencies file for hwgen_multilane_test.
# This may be replaced when dependencies are built.
