file(REMOVE_RECURSE
  "CMakeFiles/hwgen_multilane_test.dir/hwgen_multilane_test.cc.o"
  "CMakeFiles/hwgen_multilane_test.dir/hwgen_multilane_test.cc.o.d"
  "hwgen_multilane_test"
  "hwgen_multilane_test.pdb"
  "hwgen_multilane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen_multilane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
