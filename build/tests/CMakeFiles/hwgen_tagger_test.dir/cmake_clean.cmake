file(REMOVE_RECURSE
  "CMakeFiles/hwgen_tagger_test.dir/hwgen_tagger_test.cc.o"
  "CMakeFiles/hwgen_tagger_test.dir/hwgen_tagger_test.cc.o.d"
  "hwgen_tagger_test"
  "hwgen_tagger_test.pdb"
  "hwgen_tagger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen_tagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
