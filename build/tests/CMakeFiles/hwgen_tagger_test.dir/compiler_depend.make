# Empty compiler generated dependencies file for hwgen_tagger_test.
# This may be replaced when dependencies are built.
