# Empty dependencies file for rtl_techmap_test.
# This may be replaced when dependencies are built.
