file(REMOVE_RECURSE
  "CMakeFiles/rtl_techmap_test.dir/rtl_techmap_test.cc.o"
  "CMakeFiles/rtl_techmap_test.dir/rtl_techmap_test.cc.o.d"
  "rtl_techmap_test"
  "rtl_techmap_test.pdb"
  "rtl_techmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_techmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
