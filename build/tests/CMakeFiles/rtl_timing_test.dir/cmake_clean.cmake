file(REMOVE_RECURSE
  "CMakeFiles/rtl_timing_test.dir/rtl_timing_test.cc.o"
  "CMakeFiles/rtl_timing_test.dir/rtl_timing_test.cc.o.d"
  "rtl_timing_test"
  "rtl_timing_test.pdb"
  "rtl_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
