file(REMOVE_RECURSE
  "CMakeFiles/core_end_to_end_test.dir/core_end_to_end_test.cc.o"
  "CMakeFiles/core_end_to_end_test.dir/core_end_to_end_test.cc.o.d"
  "core_end_to_end_test"
  "core_end_to_end_test.pdb"
  "core_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
