file(REMOVE_RECURSE
  "CMakeFiles/grammar_lint_test.dir/grammar_lint_test.cc.o"
  "CMakeFiles/grammar_lint_test.dir/grammar_lint_test.cc.o.d"
  "grammar_lint_test"
  "grammar_lint_test.pdb"
  "grammar_lint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
