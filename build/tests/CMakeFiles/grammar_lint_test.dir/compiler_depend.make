# Empty compiler generated dependencies file for grammar_lint_test.
# This may be replaced when dependencies are built.
