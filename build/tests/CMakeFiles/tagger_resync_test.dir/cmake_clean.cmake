file(REMOVE_RECURSE
  "CMakeFiles/tagger_resync_test.dir/tagger_resync_test.cc.o"
  "CMakeFiles/tagger_resync_test.dir/tagger_resync_test.cc.o.d"
  "tagger_resync_test"
  "tagger_resync_test.pdb"
  "tagger_resync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagger_resync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
