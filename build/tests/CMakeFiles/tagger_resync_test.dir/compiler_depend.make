# Empty compiler generated dependencies file for tagger_resync_test.
# This may be replaced when dependencies are built.
