# Empty dependencies file for core_context_tagger_test.
# This may be replaced when dependencies are built.
