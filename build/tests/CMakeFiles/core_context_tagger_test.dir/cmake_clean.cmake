file(REMOVE_RECURSE
  "CMakeFiles/core_context_tagger_test.dir/core_context_tagger_test.cc.o"
  "CMakeFiles/core_context_tagger_test.dir/core_context_tagger_test.cc.o.d"
  "core_context_tagger_test"
  "core_context_tagger_test.pdb"
  "core_context_tagger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_context_tagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
