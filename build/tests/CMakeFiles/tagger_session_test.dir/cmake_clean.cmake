file(REMOVE_RECURSE
  "CMakeFiles/tagger_session_test.dir/tagger_session_test.cc.o"
  "CMakeFiles/tagger_session_test.dir/tagger_session_test.cc.o.d"
  "tagger_session_test"
  "tagger_session_test.pdb"
  "tagger_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagger_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
