# Empty compiler generated dependencies file for tagger_session_test.
# This may be replaced when dependencies are built.
