file(REMOVE_RECURSE
  "CMakeFiles/rtl_netlist_test.dir/rtl_netlist_test.cc.o"
  "CMakeFiles/rtl_netlist_test.dir/rtl_netlist_test.cc.o.d"
  "rtl_netlist_test"
  "rtl_netlist_test.pdb"
  "rtl_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
