# Empty compiler generated dependencies file for json_grammar_test.
# This may be replaced when dependencies are built.
