file(REMOVE_RECURSE
  "CMakeFiles/json_grammar_test.dir/json_grammar_test.cc.o"
  "CMakeFiles/json_grammar_test.dir/json_grammar_test.cc.o.d"
  "json_grammar_test"
  "json_grammar_test.pdb"
  "json_grammar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_grammar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
