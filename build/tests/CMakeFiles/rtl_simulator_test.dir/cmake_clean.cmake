file(REMOVE_RECURSE
  "CMakeFiles/rtl_simulator_test.dir/rtl_simulator_test.cc.o"
  "CMakeFiles/rtl_simulator_test.dir/rtl_simulator_test.cc.o.d"
  "rtl_simulator_test"
  "rtl_simulator_test.pdb"
  "rtl_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
