file(REMOVE_RECURSE
  "CMakeFiles/grammar_dtd_test.dir/grammar_dtd_test.cc.o"
  "CMakeFiles/grammar_dtd_test.dir/grammar_dtd_test.cc.o.d"
  "grammar_dtd_test"
  "grammar_dtd_test.pdb"
  "grammar_dtd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_dtd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
