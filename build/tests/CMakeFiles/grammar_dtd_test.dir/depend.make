# Empty dependencies file for grammar_dtd_test.
# This may be replaced when dependencies are built.
