file(REMOVE_RECURSE
  "CMakeFiles/nids_test.dir/nids_test.cc.o"
  "CMakeFiles/nids_test.dir/nids_test.cc.o.d"
  "nids_test"
  "nids_test.pdb"
  "nids_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
