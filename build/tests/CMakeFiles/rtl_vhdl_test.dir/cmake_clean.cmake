file(REMOVE_RECURSE
  "CMakeFiles/rtl_vhdl_test.dir/rtl_vhdl_test.cc.o"
  "CMakeFiles/rtl_vhdl_test.dir/rtl_vhdl_test.cc.o.d"
  "rtl_vhdl_test"
  "rtl_vhdl_test.pdb"
  "rtl_vhdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_vhdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
