# Empty compiler generated dependencies file for rtl_vhdl_test.
# This may be replaced when dependencies are built.
