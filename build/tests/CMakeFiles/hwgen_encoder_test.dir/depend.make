# Empty dependencies file for hwgen_encoder_test.
# This may be replaced when dependencies are built.
