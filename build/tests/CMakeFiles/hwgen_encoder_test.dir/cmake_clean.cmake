file(REMOVE_RECURSE
  "CMakeFiles/hwgen_encoder_test.dir/hwgen_encoder_test.cc.o"
  "CMakeFiles/hwgen_encoder_test.dir/hwgen_encoder_test.cc.o.d"
  "hwgen_encoder_test"
  "hwgen_encoder_test.pdb"
  "hwgen_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
