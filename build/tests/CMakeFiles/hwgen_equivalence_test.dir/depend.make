# Empty dependencies file for hwgen_equivalence_test.
# This may be replaced when dependencies are built.
