file(REMOVE_RECURSE
  "CMakeFiles/hwgen_equivalence_test.dir/hwgen_equivalence_test.cc.o"
  "CMakeFiles/hwgen_equivalence_test.dir/hwgen_equivalence_test.cc.o.d"
  "hwgen_equivalence_test"
  "hwgen_equivalence_test.pdb"
  "hwgen_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
