# Empty compiler generated dependencies file for regex_position_automaton_test.
# This may be replaced when dependencies are built.
