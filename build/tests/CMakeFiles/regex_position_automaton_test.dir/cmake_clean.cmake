file(REMOVE_RECURSE
  "CMakeFiles/regex_position_automaton_test.dir/regex_position_automaton_test.cc.o"
  "CMakeFiles/regex_position_automaton_test.dir/regex_position_automaton_test.cc.o.d"
  "regex_position_automaton_test"
  "regex_position_automaton_test.pdb"
  "regex_position_automaton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_position_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
