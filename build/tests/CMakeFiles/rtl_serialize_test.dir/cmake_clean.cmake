file(REMOVE_RECURSE
  "CMakeFiles/rtl_serialize_test.dir/rtl_serialize_test.cc.o"
  "CMakeFiles/rtl_serialize_test.dir/rtl_serialize_test.cc.o.d"
  "rtl_serialize_test"
  "rtl_serialize_test.pdb"
  "rtl_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
