# Empty dependencies file for rtl_optimize_test.
# This may be replaced when dependencies are built.
