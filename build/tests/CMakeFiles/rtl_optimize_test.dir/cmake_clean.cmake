file(REMOVE_RECURSE
  "CMakeFiles/rtl_optimize_test.dir/rtl_optimize_test.cc.o"
  "CMakeFiles/rtl_optimize_test.dir/rtl_optimize_test.cc.o.d"
  "rtl_optimize_test"
  "rtl_optimize_test.pdb"
  "rtl_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
