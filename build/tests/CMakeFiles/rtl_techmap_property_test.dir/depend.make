# Empty dependencies file for rtl_techmap_property_test.
# This may be replaced when dependencies are built.
