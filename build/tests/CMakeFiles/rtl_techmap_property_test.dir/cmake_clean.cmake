file(REMOVE_RECURSE
  "CMakeFiles/rtl_techmap_property_test.dir/rtl_techmap_property_test.cc.o"
  "CMakeFiles/rtl_techmap_property_test.dir/rtl_techmap_property_test.cc.o.d"
  "rtl_techmap_property_test"
  "rtl_techmap_property_test.pdb"
  "rtl_techmap_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_techmap_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
