# Empty compiler generated dependencies file for grammar_transforms_test.
# This may be replaced when dependencies are built.
