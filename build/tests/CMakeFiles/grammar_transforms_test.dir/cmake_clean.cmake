file(REMOVE_RECURSE
  "CMakeFiles/grammar_transforms_test.dir/grammar_transforms_test.cc.o"
  "CMakeFiles/grammar_transforms_test.dir/grammar_transforms_test.cc.o.d"
  "grammar_transforms_test"
  "grammar_transforms_test.pdb"
  "grammar_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
