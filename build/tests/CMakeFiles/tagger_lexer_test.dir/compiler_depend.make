# Empty compiler generated dependencies file for tagger_lexer_test.
# This may be replaced when dependencies are built.
