file(REMOVE_RECURSE
  "CMakeFiles/tagger_lexer_test.dir/tagger_lexer_test.cc.o"
  "CMakeFiles/tagger_lexer_test.dir/tagger_lexer_test.cc.o.d"
  "tagger_lexer_test"
  "tagger_lexer_test.pdb"
  "tagger_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagger_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
