file(REMOVE_RECURSE
  "CMakeFiles/core_tag_stream_test.dir/core_tag_stream_test.cc.o"
  "CMakeFiles/core_tag_stream_test.dir/core_tag_stream_test.cc.o.d"
  "core_tag_stream_test"
  "core_tag_stream_test.pdb"
  "core_tag_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tag_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
