# Empty dependencies file for core_tag_stream_test.
# This may be replaced when dependencies are built.
