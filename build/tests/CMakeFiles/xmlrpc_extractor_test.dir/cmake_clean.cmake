file(REMOVE_RECURSE
  "CMakeFiles/xmlrpc_extractor_test.dir/xmlrpc_extractor_test.cc.o"
  "CMakeFiles/xmlrpc_extractor_test.dir/xmlrpc_extractor_test.cc.o.d"
  "xmlrpc_extractor_test"
  "xmlrpc_extractor_test.pdb"
  "xmlrpc_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrpc_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
