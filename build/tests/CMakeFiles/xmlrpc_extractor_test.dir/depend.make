# Empty dependencies file for xmlrpc_extractor_test.
# This may be replaced when dependencies are built.
