file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_xmlrpc.dir/extractor.cc.o"
  "CMakeFiles/cfgtag_xmlrpc.dir/extractor.cc.o.d"
  "CMakeFiles/cfgtag_xmlrpc.dir/message_gen.cc.o"
  "CMakeFiles/cfgtag_xmlrpc.dir/message_gen.cc.o.d"
  "CMakeFiles/cfgtag_xmlrpc.dir/router.cc.o"
  "CMakeFiles/cfgtag_xmlrpc.dir/router.cc.o.d"
  "CMakeFiles/cfgtag_xmlrpc.dir/xmlrpc_grammar.cc.o"
  "CMakeFiles/cfgtag_xmlrpc.dir/xmlrpc_grammar.cc.o.d"
  "libcfgtag_xmlrpc.a"
  "libcfgtag_xmlrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_xmlrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
