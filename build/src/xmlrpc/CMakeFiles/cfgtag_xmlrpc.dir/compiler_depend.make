# Empty compiler generated dependencies file for cfgtag_xmlrpc.
# This may be replaced when dependencies are built.
