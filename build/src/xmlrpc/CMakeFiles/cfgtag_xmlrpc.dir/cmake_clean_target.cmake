file(REMOVE_RECURSE
  "libcfgtag_xmlrpc.a"
)
