
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/analysis.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/analysis.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/analysis.cc.o.d"
  "/root/repo/src/grammar/dtd.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/dtd.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/dtd.cc.o.d"
  "/root/repo/src/grammar/grammar.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/grammar.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/grammar.cc.o.d"
  "/root/repo/src/grammar/grammar_parser.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/grammar_parser.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/grammar_parser.cc.o.d"
  "/root/repo/src/grammar/lint.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/lint.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/lint.cc.o.d"
  "/root/repo/src/grammar/token_context.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/token_context.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/token_context.cc.o.d"
  "/root/repo/src/grammar/transforms.cc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/transforms.cc.o" "gcc" "src/grammar/CMakeFiles/cfgtag_grammar.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfgtag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/cfgtag_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
