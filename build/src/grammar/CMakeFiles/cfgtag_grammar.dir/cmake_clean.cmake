file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_grammar.dir/analysis.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/analysis.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/dtd.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/dtd.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/grammar.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/grammar.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/grammar_parser.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/grammar_parser.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/lint.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/lint.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/token_context.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/token_context.cc.o.d"
  "CMakeFiles/cfgtag_grammar.dir/transforms.cc.o"
  "CMakeFiles/cfgtag_grammar.dir/transforms.cc.o.d"
  "libcfgtag_grammar.a"
  "libcfgtag_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
