# Empty compiler generated dependencies file for cfgtag_grammar.
# This may be replaced when dependencies are built.
