file(REMOVE_RECURSE
  "libcfgtag_grammar.a"
)
