file(REMOVE_RECURSE
  "libcfgtag_regex.a"
)
