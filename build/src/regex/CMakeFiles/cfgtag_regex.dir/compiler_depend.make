# Empty compiler generated dependencies file for cfgtag_regex.
# This may be replaced when dependencies are built.
