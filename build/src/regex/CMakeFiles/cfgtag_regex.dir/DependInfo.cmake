
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/char_class.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/char_class.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/char_class.cc.o.d"
  "/root/repo/src/regex/dfa.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/dfa.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/dfa.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/nfa.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/nfa.cc.o.d"
  "/root/repo/src/regex/position_automaton.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/position_automaton.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/position_automaton.cc.o.d"
  "/root/repo/src/regex/regex_ast.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/regex_ast.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/regex_ast.cc.o.d"
  "/root/repo/src/regex/regex_parser.cc" "src/regex/CMakeFiles/cfgtag_regex.dir/regex_parser.cc.o" "gcc" "src/regex/CMakeFiles/cfgtag_regex.dir/regex_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfgtag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
