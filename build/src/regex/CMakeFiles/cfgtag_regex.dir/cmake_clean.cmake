file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_regex.dir/char_class.cc.o"
  "CMakeFiles/cfgtag_regex.dir/char_class.cc.o.d"
  "CMakeFiles/cfgtag_regex.dir/dfa.cc.o"
  "CMakeFiles/cfgtag_regex.dir/dfa.cc.o.d"
  "CMakeFiles/cfgtag_regex.dir/nfa.cc.o"
  "CMakeFiles/cfgtag_regex.dir/nfa.cc.o.d"
  "CMakeFiles/cfgtag_regex.dir/position_automaton.cc.o"
  "CMakeFiles/cfgtag_regex.dir/position_automaton.cc.o.d"
  "CMakeFiles/cfgtag_regex.dir/regex_ast.cc.o"
  "CMakeFiles/cfgtag_regex.dir/regex_ast.cc.o.d"
  "CMakeFiles/cfgtag_regex.dir/regex_parser.cc.o"
  "CMakeFiles/cfgtag_regex.dir/regex_parser.cc.o.d"
  "libcfgtag_regex.a"
  "libcfgtag_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
