file(REMOVE_RECURSE
  "libcfgtag_nids.a"
)
