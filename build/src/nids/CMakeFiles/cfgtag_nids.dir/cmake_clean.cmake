file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_nids.dir/context_filter.cc.o"
  "CMakeFiles/cfgtag_nids.dir/context_filter.cc.o.d"
  "libcfgtag_nids.a"
  "libcfgtag_nids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_nids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
