# Empty compiler generated dependencies file for cfgtag_nids.
# This may be replaced when dependencies are built.
