# Empty dependencies file for cfgtag_core.
# This may be replaced when dependencies are built.
