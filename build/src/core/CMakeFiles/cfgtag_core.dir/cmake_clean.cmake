file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_core.dir/context_tagger.cc.o"
  "CMakeFiles/cfgtag_core.dir/context_tagger.cc.o.d"
  "CMakeFiles/cfgtag_core.dir/token_tagger.cc.o"
  "CMakeFiles/cfgtag_core.dir/token_tagger.cc.o.d"
  "libcfgtag_core.a"
  "libcfgtag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
