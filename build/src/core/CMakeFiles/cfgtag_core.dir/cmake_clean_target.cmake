file(REMOVE_RECURSE
  "libcfgtag_core.a"
)
