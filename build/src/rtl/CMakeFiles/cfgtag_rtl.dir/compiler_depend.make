# Empty compiler generated dependencies file for cfgtag_rtl.
# This may be replaced when dependencies are built.
