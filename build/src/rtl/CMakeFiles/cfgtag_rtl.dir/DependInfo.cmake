
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/device.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/device.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/device.cc.o.d"
  "/root/repo/src/rtl/netlist.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/netlist.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/netlist.cc.o.d"
  "/root/repo/src/rtl/optimize.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/optimize.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/optimize.cc.o.d"
  "/root/repo/src/rtl/serialize.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/serialize.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/serialize.cc.o.d"
  "/root/repo/src/rtl/simulator.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/simulator.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/simulator.cc.o.d"
  "/root/repo/src/rtl/techmap.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/techmap.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/techmap.cc.o.d"
  "/root/repo/src/rtl/timing.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/timing.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/timing.cc.o.d"
  "/root/repo/src/rtl/vcd_writer.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vcd_writer.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vcd_writer.cc.o.d"
  "/root/repo/src/rtl/vhdl_emitter.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vhdl_emitter.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vhdl_emitter.cc.o.d"
  "/root/repo/src/rtl/vhdl_testbench.cc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vhdl_testbench.cc.o" "gcc" "src/rtl/CMakeFiles/cfgtag_rtl.dir/vhdl_testbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfgtag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
