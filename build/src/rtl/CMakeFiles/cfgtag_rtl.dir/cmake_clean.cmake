file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_rtl.dir/device.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/device.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/netlist.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/netlist.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/optimize.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/optimize.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/serialize.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/serialize.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/simulator.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/simulator.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/techmap.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/techmap.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/timing.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/timing.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/vcd_writer.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/vcd_writer.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/vhdl_emitter.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/vhdl_emitter.cc.o.d"
  "CMakeFiles/cfgtag_rtl.dir/vhdl_testbench.cc.o"
  "CMakeFiles/cfgtag_rtl.dir/vhdl_testbench.cc.o.d"
  "libcfgtag_rtl.a"
  "libcfgtag_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
