file(REMOVE_RECURSE
  "libcfgtag_rtl.a"
)
