file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_tagger.dir/functional_model.cc.o"
  "CMakeFiles/cfgtag_tagger.dir/functional_model.cc.o.d"
  "CMakeFiles/cfgtag_tagger.dir/lexer.cc.o"
  "CMakeFiles/cfgtag_tagger.dir/lexer.cc.o.d"
  "CMakeFiles/cfgtag_tagger.dir/ll_parser.cc.o"
  "CMakeFiles/cfgtag_tagger.dir/ll_parser.cc.o.d"
  "CMakeFiles/cfgtag_tagger.dir/naive_matcher.cc.o"
  "CMakeFiles/cfgtag_tagger.dir/naive_matcher.cc.o.d"
  "libcfgtag_tagger.a"
  "libcfgtag_tagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_tagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
