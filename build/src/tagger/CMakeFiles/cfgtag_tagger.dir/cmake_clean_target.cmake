file(REMOVE_RECURSE
  "libcfgtag_tagger.a"
)
