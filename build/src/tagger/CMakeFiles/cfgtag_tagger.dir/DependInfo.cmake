
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tagger/functional_model.cc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/functional_model.cc.o" "gcc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/functional_model.cc.o.d"
  "/root/repo/src/tagger/lexer.cc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/lexer.cc.o" "gcc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/lexer.cc.o.d"
  "/root/repo/src/tagger/ll_parser.cc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/ll_parser.cc.o" "gcc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/ll_parser.cc.o.d"
  "/root/repo/src/tagger/naive_matcher.cc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/naive_matcher.cc.o" "gcc" "src/tagger/CMakeFiles/cfgtag_tagger.dir/naive_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfgtag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/cfgtag_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/cfgtag_grammar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
