# Empty dependencies file for cfgtag_tagger.
# This may be replaced when dependencies are built.
