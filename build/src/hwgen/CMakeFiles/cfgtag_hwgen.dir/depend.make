# Empty dependencies file for cfgtag_hwgen.
# This may be replaced when dependencies are built.
