file(REMOVE_RECURSE
  "libcfgtag_hwgen.a"
)
