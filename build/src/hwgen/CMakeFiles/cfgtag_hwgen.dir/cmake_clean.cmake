file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_hwgen.dir/decoder_gen.cc.o"
  "CMakeFiles/cfgtag_hwgen.dir/decoder_gen.cc.o.d"
  "CMakeFiles/cfgtag_hwgen.dir/encoder_gen.cc.o"
  "CMakeFiles/cfgtag_hwgen.dir/encoder_gen.cc.o.d"
  "CMakeFiles/cfgtag_hwgen.dir/tagger_gen.cc.o"
  "CMakeFiles/cfgtag_hwgen.dir/tagger_gen.cc.o.d"
  "CMakeFiles/cfgtag_hwgen.dir/tokenizer_gen.cc.o"
  "CMakeFiles/cfgtag_hwgen.dir/tokenizer_gen.cc.o.d"
  "libcfgtag_hwgen.a"
  "libcfgtag_hwgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_hwgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
