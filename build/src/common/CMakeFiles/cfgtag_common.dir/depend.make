# Empty dependencies file for cfgtag_common.
# This may be replaced when dependencies are built.
