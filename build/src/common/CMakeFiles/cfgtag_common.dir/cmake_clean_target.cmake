file(REMOVE_RECURSE
  "libcfgtag_common.a"
)
