file(REMOVE_RECURSE
  "CMakeFiles/cfgtag_common.dir/rng.cc.o"
  "CMakeFiles/cfgtag_common.dir/rng.cc.o.d"
  "CMakeFiles/cfgtag_common.dir/status.cc.o"
  "CMakeFiles/cfgtag_common.dir/status.cc.o.d"
  "CMakeFiles/cfgtag_common.dir/strings.cc.o"
  "CMakeFiles/cfgtag_common.dir/strings.cc.o.d"
  "libcfgtag_common.a"
  "libcfgtag_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgtag_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
