file(REMOVE_RECURSE
  "CMakeFiles/bench_superset.dir/bench_superset.cc.o"
  "CMakeFiles/bench_superset.dir/bench_superset.cc.o.d"
  "bench_superset"
  "bench_superset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
