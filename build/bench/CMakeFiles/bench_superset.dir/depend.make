# Empty dependencies file for bench_superset.
# This may be replaced when dependencies are built.
