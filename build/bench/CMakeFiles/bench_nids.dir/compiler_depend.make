# Empty compiler generated dependencies file for bench_nids.
# This may be replaced when dependencies are built.
