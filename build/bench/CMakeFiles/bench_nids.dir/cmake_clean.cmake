file(REMOVE_RECURSE
  "CMakeFiles/bench_nids.dir/bench_nids.cc.o"
  "CMakeFiles/bench_nids.dir/bench_nids.cc.o.d"
  "bench_nids"
  "bench_nids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
