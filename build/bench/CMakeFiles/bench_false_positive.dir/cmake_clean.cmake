file(REMOVE_RECURSE
  "CMakeFiles/bench_false_positive.dir/bench_false_positive.cc.o"
  "CMakeFiles/bench_false_positive.dir/bench_false_positive.cc.o.d"
  "bench_false_positive"
  "bench_false_positive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_positive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
