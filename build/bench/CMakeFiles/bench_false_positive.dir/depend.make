# Empty dependencies file for bench_false_positive.
# This may be replaced when dependencies are built.
